// Monte-Carlo verification of Lemma 1 / Theorem 1's re-computation bound:
// the probability that an unlearning request triggers re-computation is at
// most min{ρ_S, 1} (sample level) / min{ρ_C, 1} (client level).

#include <gtest/gtest.h>

#include <cmath>

#include "core/client_unlearner.h"
#include "core/sample_unlearner.h"
#include "core/tv_stability.h"
#include "test_workloads.h"

namespace fats {
namespace {

struct StabilityCase {
  double rho_s;
  double rho_c;
  std::string name;
};

class StabilityGridTest : public testing::TestWithParam<StabilityCase> {};

constexpr int64_t kClients = 12;
constexpr int64_t kSamples = 12;
constexpr int64_t kRounds = 3;
constexpr int64_t kLocalIters = 2;

TEST_P(StabilityGridTest, SampleRecomputationFrequencyBoundedByRhoS) {
  const StabilityCase param = GetParam();
  const int trials = 300;
  int recomputations = 0;
  double bound = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    FederatedDataset data = TinyImageData(kClients, kSamples);
    FatsConfig config =
        TinyFatsConfig(kClients, kSamples, kRounds, kLocalIters, param.rho_s,
                       param.rho_c, 3000 + static_cast<uint64_t>(trial));
    ASSERT_TRUE(config.Validate().ok());
    bound = SampleLevelStabilityBound(config);
    FatsTrainer trainer(TinyModelSpec(), config, &data);
    trainer.Train();
    // Random target sample.
    StreamId id;
    id.purpose = RngPurpose::kGeneric;
    id.iteration = static_cast<uint64_t>(trial);
    RngStream rng(999, id);
    SampleRef target{
        static_cast<int64_t>(rng.UniformInt(kClients)),
        static_cast<int64_t>(rng.UniformInt(kSamples))};
    SampleUnlearner unlearner(&trainer);
    UnlearningOutcome outcome =
        unlearner.Unlearn(target, config.total_iters_t()).value();
    if (outcome.recomputed) ++recomputations;
  }
  const double frequency = static_cast<double>(recomputations) / trials;
  const double stderr_bound = std::sqrt(bound * (1 - bound) / trials);
  EXPECT_LE(frequency, bound + 4 * stderr_bound + 0.02)
      << "observed " << frequency << " vs bound " << bound;
}

TEST_P(StabilityGridTest, ClientRecomputationFrequencyBoundedByRhoC) {
  const StabilityCase param = GetParam();
  const int trials = 300;
  int recomputations = 0;
  double bound = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    FederatedDataset data = TinyImageData(kClients, kSamples);
    FatsConfig config =
        TinyFatsConfig(kClients, kSamples, kRounds, kLocalIters, param.rho_s,
                       param.rho_c, 7000 + static_cast<uint64_t>(trial));
    ASSERT_TRUE(config.Validate().ok());
    bound = ClientLevelStabilityBound(config);
    FatsTrainer trainer(TinyModelSpec(), config, &data);
    trainer.Train();
    StreamId id;
    id.purpose = RngPurpose::kGeneric;
    id.iteration = static_cast<uint64_t>(trial);
    RngStream rng(888, id);
    const int64_t target = static_cast<int64_t>(rng.UniformInt(kClients));
    ClientUnlearner unlearner(&trainer);
    UnlearningOutcome outcome =
        unlearner.Unlearn(target, config.total_iters_t()).value();
    if (outcome.recomputed) ++recomputations;
  }
  const double frequency = static_cast<double>(recomputations) / trials;
  const double stderr_bound = std::sqrt(bound * (1 - bound) / trials);
  EXPECT_LE(frequency, bound + 4 * stderr_bound + 0.02)
      << "observed " << frequency << " vs bound " << bound;
}

INSTANTIATE_TEST_SUITE_P(
    RhoGrid, StabilityGridTest,
    testing::Values(StabilityCase{0.25, 0.5, "s25_c50"},
                    StabilityCase{0.5, 0.5, "s50_c50"},
                    StabilityCase{0.25, 1.0, "s25_c100"},
                    StabilityCase{1.0, 0.5, "s100_c50"}),
    [](const testing::TestParamInfo<StabilityCase>& param_info) {
      return param_info.param.name;
    });

TEST(StabilityTheoryTest, ClientParticipationProbabilityMatchesTheory) {
  // P(client ever selected) analytically: 1 - (1 - 1/M)^(K·R); the Lemma 1
  // bound ρ_C = K·R/M is the union bound on it. Check Monte-Carlo agreement
  // with the exact expression and dominance by the bound.
  const int trials = 2000;
  int participations = 0;
  int64_t k_drawn = 0;
  for (int trial = 0; trial < trials; ++trial) {
    FederatedDataset data = TinyImageData(kClients, kSamples);
    FatsConfig config =
        TinyFatsConfig(kClients, kSamples, kRounds, kLocalIters, 0.25, 0.5,
                       11000 + static_cast<uint64_t>(trial));
    FatsTrainer trainer(TinyModelSpec(), config, &data);
    trainer.Train();
    k_drawn = trainer.K();
    if (trainer.store().EarliestClientRound(0) >= 1) ++participations;
  }
  const double frequency = static_cast<double>(participations) / trials;
  const double draws =
      static_cast<double>(k_drawn) * static_cast<double>(kRounds);
  const double exact = 1.0 - std::pow(1.0 - 1.0 / kClients, draws);
  const double rho_c_bound = draws / kClients;
  EXPECT_NEAR(frequency, exact, 0.04);
  EXPECT_LE(frequency, rho_c_bound + 0.04);
}

}  // namespace
}  // namespace fats
