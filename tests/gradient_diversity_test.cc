#include "metrics/gradient_diversity.h"

#include <gtest/gtest.h>

#include "core/fats_trainer.h"
#include "core/tv_stability.h"
#include "data/paper_configs.h"
#include "test_workloads.h"

namespace fats {
namespace {

/// M clients holding identical data: gradients agree, Λ = 1.
FederatedDataset IdenticalClients(int64_t clients) {
  SyntheticImageConfig config;
  config.num_classes = 2;
  config.feature_dim = 4;
  config.seed = 21;
  SyntheticImageGenerator gen(config);
  InMemoryDataset shard = gen.Generate(8, {}, -1, 1);
  std::vector<InMemoryDataset> shards(static_cast<size_t>(clients), shard);
  return FederatedDataset(std::move(shards), gen.Generate(20, {}, -1, 2));
}

TEST(GradientDiversityTest, IdenticalClientsHaveLambdaOne) {
  FederatedDataset data = IdenticalClients(5);
  Model model(TinyModelSpec(), 3);
  EXPECT_NEAR(GradientDiversity(&model, data), 1.0, 1e-4);
}

TEST(GradientDiversityTest, AlwaysAtLeastOne) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    FederatedDataset data = TinyImageData(6, 10, 2, 4, seed);
    Model model(TinyModelSpec(), seed);
    EXPECT_GE(GradientDiversity(&model, data), 1.0 - 1e-9) << seed;
  }
}

TEST(GradientDiversityTest, HeterogeneityIncreasesLambda) {
  // Dirichlet-skewed per-client class mixes versus IID draws from the same
  // generator: the skewed federation must show larger diversity.
  DatasetProfile iid_profile = ScaledProfile("mnist").value();
  iid_profile.clients_m = 20;
  iid_profile.dirichlet_beta = 200.0;  // ≈ IID
  DatasetProfile skew_profile = iid_profile;
  skew_profile.dirichlet_beta = 0.1;   // strongly non-IID
  FederatedDataset iid = BuildFederatedData(iid_profile, 1);
  FederatedDataset skewed = BuildFederatedData(skew_profile, 1);
  Model model(iid_profile.model, 5);
  const double lambda_iid = GradientDiversity(&model, iid);
  const double lambda_skew = GradientDiversity(&model, skewed);
  EXPECT_GT(lambda_skew, lambda_iid);
}

TEST(GradientDiversityTest, DoesNotPerturbModelParameters) {
  FederatedDataset data = TinyImageData(4, 8);
  Model model(TinyModelSpec(), 3);
  const Tensor before = model.GetParameters();
  GradientDiversity(&model, data);
  EXPECT_TRUE(model.GetParameters().BitwiseEquals(before));
}

TEST(GradientDiversityTest, MaxOverTrajectoryFeedsConditionSeven) {
  // End-to-end use: train FATS, estimate λ̂ along the stored trajectory,
  // and verify the resulting condition-(7) learning-rate cap is positive
  // and satisfied by a fraction of it.
  FederatedDataset data = TinyImageData(8, 12);
  FatsConfig config = TinyFatsConfig(8, 12, 6, 3);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  trainer.Train();
  const double lambda = MaxGradientDiversity(
      trainer.model(), data, config.rounds_r, /*probes=*/4,
      [&trainer](int64_t round) {
        return trainer.store().GetGlobalModel(round);
      });
  EXPECT_GE(lambda, 1.0);
  ConvergenceConstants constants;
  constants.heterogeneity_lambda = lambda;
  const double eta_max =
      MaxStableLearningRate(constants, config.local_iters_e);
  EXPECT_GT(eta_max, 0.0);
  EXPECT_TRUE(
      LearningRateConditionHolds(0.5 * eta_max, constants,
                                 config.local_iters_e));
}

TEST(GradientDiversityTest, RespectsDeletions) {
  FederatedDataset data = TinyImageData(5, 8);
  Model model(TinyModelSpec(), 3);
  const double before = GradientDiversity(&model, data);
  ASSERT_TRUE(data.RemoveClient(0).ok());
  const double after = GradientDiversity(&model, data);
  // Defined over the remaining federation — just has to be valid.
  EXPECT_GE(after, 1.0 - 1e-9);
  EXPECT_NE(before, after);
}

}  // namespace
}  // namespace fats
