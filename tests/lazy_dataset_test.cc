// Lazy federated datasets (data/federated_dataset.h lazy mode +
// data/paper_configs.h BuildLazyFederatedData): client shards are generated
// on demand from per-client keyed streams and only a bounded number stay
// resident. The contract under test: every materialization — first touch,
// or regeneration after an eviction — is bitwise identical to the eager
// build, deletion overlays survive eviction, and a trainer run on lazy data
// is bit-for-bit the trainer run on eager data.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fats_trainer.h"
#include "core/sample_unlearner.h"
#include "data/federated_dataset.h"
#include "data/paper_configs.h"

namespace fats {
namespace {

// A profile small enough to materialize every shard both ways repeatedly.
DatasetProfile TinyProfile(const std::string& base = "mnist") {
  DatasetProfile p = ScaledProfile(base).value();
  p.clients_m = 8;
  p.samples_per_client_n = 10;
  p.clients_per_round_k = 3;
  p.rounds_r = 3;
  p.local_iters_e = 2;
  p.batch_b = 4;
  p.test_size = 40;
  return p;
}

void ExpectShardsBitwiseEqual(const FederatedDataset& eager,
                              const FederatedDataset& lazy) {
  ASSERT_EQ(eager.num_clients(), lazy.num_clients());
  for (int64_t k = 0; k < eager.num_clients(); ++k) {
    EXPECT_TRUE(
        eager.client_data(k).features().BitwiseEquals(
            lazy.client_data(k).features()))
        << "features of client " << k;
    EXPECT_EQ(eager.client_data(k).labels(), lazy.client_data(k).labels())
        << "labels of client " << k;
    EXPECT_EQ(eager.num_active_samples(k), lazy.num_active_samples(k));
  }
  EXPECT_TRUE(
      eager.global_test().features().BitwiseEquals(
          lazy.global_test().features()));
  EXPECT_EQ(eager.global_test().labels(), lazy.global_test().labels());
}

TEST(LazyDatasetTest, MatchesEagerBitwiseForEveryTaskKind) {
  // One profile per generator family: simulated-LDA image, natural-partition
  // image, and text. The cache holds 3 of 8 shards, so this walk also
  // exercises evict + regenerate, not just first touch.
  for (const std::string& base : {"mnist", "femnist", "shakespeare"}) {
    const DatasetProfile p = TinyProfile(base);
    const FederatedDataset eager = BuildFederatedData(p, 3);
    LazyDatasetOptions options;
    options.shard_cache_capacity = 3;
    const FederatedDataset lazy = BuildLazyFederatedData(p, 3, options);
    ASSERT_TRUE(lazy.lazy());
    ASSERT_FALSE(eager.lazy());
    ExpectShardsBitwiseEqual(eager, lazy);
    EXPECT_LE(lazy.materialized_shards(), 3);
    EXPECT_EQ(lazy.shard_generations(), 8) << "one generation per shard";
    // Client 0 was evicted during the walk; revisiting regenerates it and
    // the regenerated shard still matches the eager build.
    EXPECT_TRUE(eager.client_data(0).features().BitwiseEquals(
        lazy.client_data(0).features()));
    EXPECT_EQ(lazy.shard_generations(), 9);
  }
}

TEST(LazyDatasetTest, RegenerationIsDeterministic) {
  const DatasetProfile p = TinyProfile();
  LazyDatasetOptions options;
  options.shard_cache_capacity = 2;
  FederatedDataset lazy = BuildLazyFederatedData(p, 9, options);
  // Capture client 0, thrash the cache so it is evicted, read it again.
  const Tensor first = lazy.client_data(0).features();
  for (int64_t k = 1; k < p.clients_m; ++k) (void)lazy.client_data(k);
  const int64_t generations_before = lazy.shard_generations();
  EXPECT_TRUE(lazy.client_data(0).features().BitwiseEquals(first));
  EXPECT_GT(lazy.shard_generations(), generations_before)
      << "client 0 should have been regenerated, not cached";
}

TEST(LazyDatasetTest, DeletionsSurviveEviction) {
  const DatasetProfile p = TinyProfile();
  LazyDatasetOptions options;
  options.shard_cache_capacity = 2;
  FederatedDataset lazy = BuildLazyFederatedData(p, 9, options);
  ASSERT_TRUE(lazy.RemoveSample({1, 4}).ok());
  ASSERT_TRUE(lazy.RemoveClient(5).ok());
  // Thrash the cache so both touched shards are regenerated from scratch.
  for (int64_t k = 0; k < p.clients_m; ++k) {
    if (lazy.client_active(k)) (void)lazy.client_data(k);
  }
  EXPECT_FALSE(lazy.sample_active(1, 4));
  EXPECT_TRUE(lazy.sample_active(1, 3));
  EXPECT_EQ(lazy.num_active_samples(1), p.samples_per_client_n - 1);
  EXPECT_EQ(lazy.active_sample_indices(1).size(),
            static_cast<size_t>(p.samples_per_client_n - 1));
  EXPECT_FALSE(lazy.client_active(5));
  EXPECT_EQ(lazy.RemoveSample({1, 4}).code(),
            StatusCode::kFailedPrecondition);
  // Batch gather honors the overlay after regeneration too.
  Batch batch = lazy.MakeBatch(1, {0, 3});
  EXPECT_EQ(batch.size(), 2);
}

TEST(LazyDatasetTest, TrainerOnLazyDataIsBitIdenticalToEager) {
  const DatasetProfile p = TinyProfile();
  const FatsConfig config = FatsConfig::FromProfile(p);

  FederatedDataset eager = BuildFederatedData(p, 3);
  LazyDatasetOptions options;
  options.shard_cache_capacity = 2;
  FederatedDataset lazy = BuildLazyFederatedData(p, 3, options);

  FatsTrainer trainer_e(p.model, config, &eager);
  FatsTrainer trainer_l(p.model, config, &lazy);
  trainer_e.Train();
  trainer_l.Train();
  EXPECT_TRUE(
      trainer_e.global_params().BitwiseEquals(trainer_l.global_params()));
  ASSERT_EQ(trainer_e.log().records().size(), trainer_l.log().records().size());
  for (size_t i = 0; i < trainer_e.log().records().size(); ++i) {
    EXPECT_EQ(trainer_e.log().records()[i].test_accuracy,
              trainer_l.log().records()[i].test_accuracy);
    EXPECT_EQ(trainer_e.log().records()[i].mean_local_loss,
              trainer_l.log().records()[i].mean_local_loss);
  }

  // Unlearning replays re-read minibatches through the lazy gather path.
  const std::vector<SampleRef> targets = {{0, 0}, {2, 2}};
  const int64_t t_max = trainer_e.trained_through();
  SampleUnlearner unlearner_e(&trainer_e);
  SampleUnlearner unlearner_l(&trainer_l);
  auto outcome_e = unlearner_e.UnlearnBatch(targets, t_max);
  auto outcome_l = unlearner_l.UnlearnBatch(targets, t_max);
  ASSERT_TRUE(outcome_e.ok()) << outcome_e.status().message();
  ASSERT_TRUE(outcome_l.ok()) << outcome_l.status().message();
  EXPECT_EQ(outcome_e->recomputed, outcome_l->recomputed);
  EXPECT_TRUE(
      trainer_e.global_params().BitwiseEquals(trainer_l.global_params()));
}

TEST(LazyDatasetTest, EagerModeIsUnchangedByLazyPlumbing) {
  // The eager constructor must report lazy() == false and keep the
  // zero-overhead path: no generations, no materialized-shard accounting.
  const DatasetProfile p = TinyProfile();
  FederatedDataset eager = BuildFederatedData(p, 3);
  EXPECT_FALSE(eager.lazy());
  EXPECT_EQ(eager.materialized_shards(), eager.num_clients());
  EXPECT_EQ(eager.shard_generations(), 0);
}

TEST(LazyDatasetDeathTest, CentralLdaProfileRefusesLazyBuild) {
  DatasetProfile p = TinyProfile();
  p.central_lda_partition = true;
  EXPECT_DEATH(BuildLazyFederatedData(p, 3), "central_lda_partition");
}

}  // namespace
}  // namespace fats
