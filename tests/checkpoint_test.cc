#include "io/checkpoint.h"

#include <gtest/gtest.h>

#include "core/client_unlearner.h"
#include "core/sample_unlearner.h"
#include "test_workloads.h"

namespace fats {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(TensorSerializationTest, RoundTrip) {
  const std::string path = TempPath("tensor_roundtrip.bin");
  Tensor original({2, 3}, {1, 2, 3, 4, 5, 6});
  {
    BinaryWriter writer(path);
    WriteTensor(original, &writer);
    WriteTensor(Tensor(), &writer);  // empty tensor
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(path);
  Tensor restored = ReadTensor(&reader).value();
  EXPECT_TRUE(restored.BitwiseEquals(original));
  Tensor empty = ReadTensor(&reader).value();
  EXPECT_TRUE(empty.empty());
}

TEST(TensorSerializationTest, CorruptShapeRejected) {
  const std::string path = TempPath("tensor_corrupt.bin");
  {
    BinaryWriter writer(path);
    writer.WriteI64Vector({2, 3});     // shape says 6 elements
    writer.WriteFloatVector({1, 2});   // only 2 provided
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(path);
  EXPECT_FALSE(ReadTensor(&reader).ok());
}

struct Trained {
  FederatedDataset data;
  FatsConfig config;
  std::unique_ptr<FatsTrainer> trainer;
};

Trained TrainTiny(uint64_t seed = 7) {
  Trained t;
  t.data = TinyImageData(6, 10);
  t.config = TinyFatsConfig(6, 10, 4, 3, 0.5, 0.5, seed);
  t.trainer =
      std::make_unique<FatsTrainer>(TinyModelSpec(), t.config, &t.data);
  t.trainer->Train();
  return t;
}

TEST(CheckpointTest, SaveLoadRestoresEverything) {
  const std::string path = TempPath("trainer_checkpoint.bin");
  Trained original = TrainTiny();
  ASSERT_TRUE(SaveTrainerCheckpoint(original.trainer.get(), path).ok());

  // A fresh trainer over an equivalent dataset.
  Trained restored_env;
  restored_env.data = TinyImageData(6, 10);
  restored_env.config = original.config;
  restored_env.trainer = std::make_unique<FatsTrainer>(
      TinyModelSpec(), restored_env.config, &restored_env.data);
  FatsTrainer* restored = restored_env.trainer.get();
  ASSERT_TRUE(LoadTrainerCheckpoint(path, restored).ok());

  EXPECT_TRUE(restored->global_params().BitwiseEquals(
      original.trainer->global_params()));
  EXPECT_EQ(restored->generation(), original.trainer->generation());
  EXPECT_EQ(restored->trained_through(),
            original.trainer->trained_through());
  EXPECT_EQ(restored->log().records().size(),
            original.trainer->log().records().size());
  EXPECT_EQ(restored->comm_stats().total_bytes(),
            original.trainer->comm_stats().total_bytes());
  EXPECT_EQ(restored->comm_stats().rounds(),
            original.trainer->comm_stats().rounds());
  // Store contents identical.
  for (int64_t r = 0; r <= original.config.rounds_r; ++r) {
    const Tensor* a = original.trainer->store().GetGlobalModel(r);
    const Tensor* b = restored->store().GetGlobalModel(r);
    ASSERT_EQ(a != nullptr, b != nullptr) << "round " << r;
    if (a != nullptr) {
      EXPECT_TRUE(a->BitwiseEquals(*b));
    }
  }
  EXPECT_EQ(restored->store().MinibatchKeys(),
            original.trainer->store().MinibatchKeys());
  EXPECT_EQ(restored->store().LocalModelKeys(),
            original.trainer->store().LocalModelKeys());
}

TEST(CheckpointTest, RestoredTrainerServesExactUnlearning) {
  const std::string path = TempPath("trainer_checkpoint_unlearn.bin");
  Trained original = TrainTiny();
  ASSERT_TRUE(SaveTrainerCheckpoint(original.trainer.get(), path).ok());

  // Unlearn on the original.
  SampleRef target{-1, -1};
  for (int64_t k = 0; k < original.data.num_clients() && target.client < 0;
       ++k) {
    for (int64_t i = 0; i < original.data.samples_of(k); ++i) {
      if (original.trainer->store().EarliestSampleUse({k, i}) >= 1) {
        target = {k, i};
        break;
      }
    }
  }
  ASSERT_GE(target.client, 0);
  SampleUnlearner original_unlearner(original.trainer.get());
  ASSERT_TRUE(original_unlearner
                  .Unlearn(target, original.config.total_iters_t())
                  .ok());

  // Restore into a fresh environment and unlearn the same target: the
  // entire pipeline is deterministic, so the results must agree bit-for-bit.
  Trained restored_env;
  restored_env.data = TinyImageData(6, 10);
  restored_env.config = original.config;
  restored_env.trainer = std::make_unique<FatsTrainer>(
      TinyModelSpec(), restored_env.config, &restored_env.data);
  ASSERT_TRUE(LoadTrainerCheckpoint(path, restored_env.trainer.get()).ok());
  SampleUnlearner restored_unlearner(restored_env.trainer.get());
  ASSERT_TRUE(restored_unlearner
                  .Unlearn(target, restored_env.config.total_iters_t())
                  .ok());
  EXPECT_TRUE(restored_env.trainer->global_params().BitwiseEquals(
      original.trainer->global_params()));
}

TEST(CheckpointTest, MidTrainingCheckpointResumes) {
  const std::string path = TempPath("trainer_checkpoint_mid.bin");
  Trained full = TrainTiny();

  Trained partial;
  partial.data = TinyImageData(6, 10);
  partial.config = full.config;
  partial.trainer = std::make_unique<FatsTrainer>(
      TinyModelSpec(), partial.config, &partial.data);
  partial.trainer->TrainUntil(6);
  ASSERT_TRUE(SaveTrainerCheckpoint(partial.trainer.get(), path).ok());

  Trained resumed;
  resumed.data = TinyImageData(6, 10);
  resumed.config = full.config;
  resumed.trainer = std::make_unique<FatsTrainer>(
      TinyModelSpec(), resumed.config, &resumed.data);
  ASSERT_TRUE(LoadTrainerCheckpoint(path, resumed.trainer.get()).ok());
  EXPECT_EQ(resumed.trainer->trained_through(), 6);
  resumed.trainer->TrainUntil(full.config.total_iters_t());
  EXPECT_TRUE(resumed.trainer->global_params().BitwiseEquals(
      full.trainer->global_params()));
}

TEST(CheckpointTest, RejectsWrongMagicAndConfig) {
  const std::string path = TempPath("trainer_checkpoint_bad.bin");
  {
    BinaryWriter writer(path);
    writer.WriteString("NOTACKPT");
    ASSERT_TRUE(writer.Finish().ok());
  }
  Trained env = TrainTiny();
  EXPECT_EQ(LoadTrainerCheckpoint(path, env.trainer.get()).code(),
            StatusCode::kInvalidArgument);

  // Config mismatch: different learning rate.
  const std::string good_path = TempPath("trainer_checkpoint_good.bin");
  ASSERT_TRUE(SaveTrainerCheckpoint(env.trainer.get(), good_path).ok());
  Trained other;
  other.data = TinyImageData(6, 10);
  other.config = env.config;
  other.config.learning_rate *= 2;
  other.trainer = std::make_unique<FatsTrainer>(TinyModelSpec(),
                                                other.config, &other.data);
  EXPECT_EQ(LoadTrainerCheckpoint(good_path, other.trainer.get()).code(),
            StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, MissingFileFails) {
  Trained env = TrainTiny();
  EXPECT_FALSE(
      LoadTrainerCheckpoint("/nonexistent_zzz/x.ckpt", env.trainer.get())
          .ok());
}

}  // namespace
}  // namespace fats
