// Parameterized invariants over all six scaled dataset profiles: every
// profile must train, record complete algorithmic state, account
// communication exactly, and serve both unlearning levels.

#include <gtest/gtest.h>

#include "core/client_unlearner.h"
#include "core/sample_unlearner.h"
#include "core/unlearning_executor.h"
#include "data/paper_configs.h"

namespace fats {
namespace {

DatasetProfile ShortProfile(const std::string& name) {
  DatasetProfile profile = ScaledProfile(name).value();
  // Trim for test runtime; ratios (and thus ρ feasibility) are preserved by
  // shrinking rounds and clients together where needed.
  profile.rounds_r = std::min<int64_t>(profile.rounds_r, 4);
  profile.clients_m = std::min<int64_t>(profile.clients_m, 40);
  profile.test_size = 120;
  return profile;
}

class ProfileInvariantsTest : public testing::TestWithParam<std::string> {};

TEST_P(ProfileInvariantsTest, TrainsWithCompleteState) {
  DatasetProfile profile = ShortProfile(GetParam());
  FederatedDataset data = BuildFederatedData(profile, 3);
  FatsConfig config = FatsConfig::FromProfile(profile);
  if (!config.Validate().ok()) {
    config.rho_s = 0.25;
    config.rho_c = 0.5;
  }
  config.seed = 3;
  ASSERT_TRUE(config.Validate().ok()) << config.ToString();
  FatsTrainer trainer(profile.model, config, &data);
  trainer.Train();

  // One log record per round, rounds numbered 1..R.
  ASSERT_EQ(trainer.log().records().size(),
            static_cast<size_t>(config.rounds_r));
  for (int64_t r = 1; r <= config.rounds_r; ++r) {
    EXPECT_EQ(trainer.log().records()[static_cast<size_t>(r - 1)].round, r);
    // Complete state: selection + global model per round, K entries each.
    const std::vector<int64_t>* selection =
        trainer.store().GetClientSelection(r);
    ASSERT_NE(selection, nullptr) << GetParam() << " round " << r;
    EXPECT_EQ(static_cast<int64_t>(selection->size()), trainer.K());
    EXPECT_NE(trainer.store().GetGlobalModel(r), nullptr);
  }
  // Exact communication accounting: 2 directions x R rounds x K models.
  const int64_t d = trainer.model()->NumParameters();
  EXPECT_EQ(trainer.comm_stats().total_bytes(),
            2 * config.rounds_r * trainer.K() * d * 4);
  // Accuracy is a valid probability and training executed real work.
  const double accuracy = trainer.EvaluateTestAccuracy();
  EXPECT_GE(accuracy, 0.0);
  EXPECT_LE(accuracy, 1.0);
  EXPECT_GE(trainer.local_iterations_executed(), config.total_iters_t());
}

TEST_P(ProfileInvariantsTest, ServesBothUnlearningLevels) {
  DatasetProfile profile = ShortProfile(GetParam());
  FederatedDataset data = BuildFederatedData(profile, 4);
  FatsConfig config = FatsConfig::FromProfile(profile);
  if (!config.Validate().ok()) {
    config.rho_s = 0.25;
    config.rho_c = 0.5;
  }
  config.seed = 4;
  FatsTrainer trainer(profile.model, config, &data);
  trainer.Train();
  StreamId id;
  id.purpose = RngPurpose::kGeneric;
  RngStream rng(9, id);
  SampleUnlearner sample_unlearner(&trainer);
  ASSERT_TRUE(sample_unlearner
                  .Unlearn(PickRandomActiveSamples(data, 1, &rng)[0],
                           config.total_iters_t())
                  .ok())
      << GetParam();
  ClientUnlearner client_unlearner(&trainer);
  ASSERT_TRUE(client_unlearner
                  .Unlearn(PickRandomActiveClients(data, 1, &rng)[0],
                           config.total_iters_t())
                  .ok())
      << GetParam();
  // Post-unlearning state never references deleted data.
  for (int64_t r = 1; r <= config.rounds_r; ++r) {
    const std::vector<int64_t>* selection =
        trainer.store().GetClientSelection(r);
    ASSERT_NE(selection, nullptr);
    for (int64_t k : *selection) {
      EXPECT_TRUE(data.client_active(k)) << GetParam();
    }
  }
}

TEST_P(ProfileInvariantsTest, DeterministicAcrossRebuilds) {
  DatasetProfile profile = ShortProfile(GetParam());
  auto run = [&profile]() {
    FederatedDataset data = BuildFederatedData(profile, 5);
    FatsConfig config = FatsConfig::FromProfile(profile);
    if (!config.Validate().ok()) {
      config.rho_s = 0.25;
      config.rho_c = 0.5;
    }
    config.seed = 5;
    FatsTrainer trainer(profile.model, config, &data);
    trainer.Train();
    return trainer.global_params();
  };
  EXPECT_TRUE(run().BitwiseEquals(run())) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileInvariantsTest,
                         testing::ValuesIn(ScaledProfileNames()),
                         [](const testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

}  // namespace
}  // namespace fats
