// ThreadPool unit tests. The concurrency cases double as the tsan workload
// for the pool itself (see tools/ci.sh, which runs them under the tsan
// preset).

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace fats {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int64_t> order;
  pool.ParallelFor(5, [&](int64_t i, int64_t worker) {
    EXPECT_EQ(worker, 0);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ZeroOrNegativeThreadCountClampsToSerial) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  int64_t runs = 0;
  pool.ParallelFor(3, [&](int64_t, int64_t) { ++runs; });
  EXPECT_EQ(runs, 3);
}

TEST(ThreadPoolTest, EmptyBatchReturnsImmediately) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](int64_t, int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& hit : hits) hit.store(0);
  pool.ParallelFor(kTasks, [&](int64_t i, int64_t worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, pool.num_threads());
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (int64_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SlotWritesNeedNoSynchronization) {
  // The determinism contract: each task writes only its own slot. This is
  // exactly how the trainers use the pool, and it must be race-free.
  ThreadPool pool(4);
  constexpr int64_t kTasks = 200;
  std::vector<int64_t> slots(kTasks, -1);
  pool.ParallelFor(kTasks,
                   [&](int64_t i, int64_t) { slots[static_cast<size_t>(i)] = i * i; });
  for (int64_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(slots[static_cast<size_t>(i)], i * i);
  }
}

TEST(ThreadPoolTest, PerWorkerScratchIsPrivate) {
  // Worker ids partition tasks into private scratch accumulators; their
  // totals must account for every task exactly once.
  ThreadPool pool(3);
  constexpr int64_t kTasks = 300;
  std::vector<int64_t> per_worker(static_cast<size_t>(pool.num_threads()), 0);
  pool.ParallelFor(kTasks, [&](int64_t, int64_t worker) {
    ++per_worker[static_cast<size_t>(worker)];
  });
  int64_t total = 0;
  for (int64_t count : per_worker) total += count;
  EXPECT_EQ(total, kTasks);
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    const int64_t n = 1 + (round % 7);
    std::vector<int64_t> slots(static_cast<size_t>(n), 0);
    pool.ParallelFor(n, [&](int64_t i, int64_t) {
      slots[static_cast<size_t>(i)] = round + i;
    });
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(slots[static_cast<size_t>(i)], round + i);
    }
  }
}

TEST(ThreadPoolTest, SingleTaskBatchRunsInline) {
  // n == 1 short-circuits to the calling thread even with workers alive.
  ThreadPool pool(4);
  int64_t worker_seen = -1;
  pool.ParallelFor(1, [&](int64_t i, int64_t worker) {
    EXPECT_EQ(i, 0);
    worker_seen = worker;
  });
  EXPECT_EQ(worker_seen, 0);
}

TEST(WriterThreadTest, TasksRunInPostOrder) {
  // Single consumer, FIFO queue: tasks run one at a time in post order —
  // the property the async journal's batch handoff relies on.
  WriterThread writer;
  std::vector<int> order;  // written only by the writer thread until Drain
  for (int i = 0; i < 100; ++i) {
    writer.Post([&order, i] { order.push_back(i); });
  }
  writer.Drain();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(WriterThreadTest, DrainWaitsForInFlightTask) {
  WriterThread writer;
  std::atomic<bool> done{false};
  writer.Post([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    done.store(true);
  });
  writer.Drain();
  EXPECT_TRUE(done.load());
}

TEST(WriterThreadTest, DrainOnIdleReturnsImmediately) {
  WriterThread writer;
  writer.Drain();  // nothing posted; must not hang
  std::atomic<int> runs{0};
  writer.Post([&runs] { runs.fetch_add(1); });
  writer.Drain();
  writer.Drain();  // second drain after quiescence is also a no-op
  EXPECT_EQ(runs.load(), 1);
}

TEST(WriterThreadTest, DestructorRunsEveryPostedTask) {
  // The destructor contract: every posted task runs before the thread
  // joins, so a closing async journal never drops a batch.
  std::atomic<int> runs{0};
  {
    WriterThread writer;
    for (int i = 0; i < 50; ++i) {
      writer.Post([&runs] { runs.fetch_add(1); });
    }
  }
  EXPECT_EQ(runs.load(), 50);
}

TEST(WriterThreadTest, ReusableAcrossManyDrainCycles) {
  WriterThread writer;
  int64_t sum = 0;  // writer-thread-owned between Drain barriers
  for (int cycle = 0; cycle < 20; ++cycle) {
    for (int i = 0; i < 5; ++i) {
      writer.Post([&sum, cycle, i] { sum += cycle * 5 + i; });
    }
    writer.Drain();
  }
  EXPECT_EQ(sum, 100 * 99 / 2);
}

}  // namespace
}  // namespace fats
