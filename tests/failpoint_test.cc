// Failpoint framework tests: spec parsing, Nth-hit firing, self-disarm,
// and the injected-Status macro path. Crash/torn-write end-to-end behaviour
// lives in crash_matrix_test.cc.

#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace fats::failpoint {
namespace {

class FailpointTest : public testing::Test {
 protected:
  void SetUp() override { DisarmAll(); }
  void TearDown() override { DisarmAll(); }
};

TEST_F(FailpointTest, ParsesSpecList) {
  Result<std::vector<Spec>> specs =
      ParseSpecList("journal.append:3:crash,checkpoint.rename:1:error");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs->size(), 2u);
  EXPECT_EQ((*specs)[0].site, "journal.append");
  EXPECT_EQ((*specs)[0].hit_count, 3);
  EXPECT_EQ((*specs)[0].action, Action::kCrash);
  EXPECT_EQ((*specs)[1].site, "checkpoint.rename");
  EXPECT_EQ((*specs)[1].hit_count, 1);
  EXPECT_EQ((*specs)[1].action, Action::kError);
}

TEST_F(FailpointTest, ParsesAllActions) {
  Result<std::vector<Spec>> specs =
      ParseSpecList("a:1:error,b:1:crash,c:1:torn-write,d:1:delay");
  ASSERT_TRUE(specs.ok());
  EXPECT_EQ((*specs)[0].action, Action::kError);
  EXPECT_EQ((*specs)[1].action, Action::kCrash);
  EXPECT_EQ((*specs)[2].action, Action::kTornWrite);
  EXPECT_EQ((*specs)[3].action, Action::kDelay);
}

TEST_F(FailpointTest, EmptySpecIsEmpty) {
  Result<std::vector<Spec>> specs = ParseSpecList("");
  ASSERT_TRUE(specs.ok());
  EXPECT_TRUE(specs->empty());
}

TEST_F(FailpointTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseSpecList("siteonly").ok());
  EXPECT_FALSE(ParseSpecList("site:1").ok());
  EXPECT_FALSE(ParseSpecList(":1:error").ok());
  EXPECT_FALSE(ParseSpecList("site:0:error").ok());
  EXPECT_FALSE(ParseSpecList("site:-2:error").ok());
  EXPECT_FALSE(ParseSpecList("site:x:error").ok());
  EXPECT_FALSE(ParseSpecList("site:1:explode").ok());
  EXPECT_FALSE(ParseSpecList("good:1:error,bad").ok());
}

TEST_F(FailpointTest, DisarmedSitesAreFree) {
  EXPECT_FALSE(AnyArmed());
  EXPECT_TRUE(RegisterSite("test.disarmed"));
  // Evaluate on an unarmed site reports nothing and stays unarmed.
  EXPECT_EQ(Evaluate("test.disarmed"), Triggered::kNone);
  EXPECT_FALSE(AnyArmed());
}

TEST_F(FailpointTest, FiresOnNthHitThenSelfDisarms) {
  ASSERT_TRUE(ArmFromSpec("test.nth:3:error").ok());
  EXPECT_TRUE(AnyArmed());
  EXPECT_EQ(Evaluate("test.nth"), Triggered::kNone);
  EXPECT_EQ(Evaluate("test.nth"), Triggered::kNone);
  EXPECT_EQ(Evaluate("test.nth"), Triggered::kError);
  // The spec disarmed itself when it fired.
  EXPECT_FALSE(AnyArmed());
  EXPECT_EQ(Evaluate("test.nth"), Triggered::kNone);
}

TEST_F(FailpointTest, RearmReplacesPriorSpec) {
  Arm(Spec{"test.rearm", 5, Action::kError});
  Arm(Spec{"test.rearm", 1, Action::kTornWrite});
  EXPECT_EQ(Evaluate("test.rearm"), Triggered::kTornWrite);
}

TEST_F(FailpointTest, SpecsForDifferentSitesAreIndependent) {
  ASSERT_TRUE(ArmFromSpec("test.a:1:error,test.b:2:torn-write").ok());
  EXPECT_EQ(Evaluate("test.b"), Triggered::kNone);
  EXPECT_EQ(Evaluate("test.a"), Triggered::kError);
  EXPECT_TRUE(AnyArmed());  // test.b still pending
  EXPECT_EQ(Evaluate("test.b"), Triggered::kTornWrite);
  EXPECT_FALSE(AnyArmed());
}

TEST_F(FailpointTest, DelayReportsNone) {
  ASSERT_TRUE(ArmFromSpec("test.delay:1:delay").ok());
  EXPECT_EQ(Evaluate("test.delay"), Triggered::kNone);
  EXPECT_FALSE(AnyArmed());
}

TEST_F(FailpointTest, DisarmAllClearsEverything) {
  ASSERT_TRUE(ArmFromSpec("test.x:1:error,test.y:1:error").ok());
  ASSERT_TRUE(AnyArmed());
  DisarmAll();
  EXPECT_FALSE(AnyArmed());
  EXPECT_EQ(Evaluate("test.x"), Triggered::kNone);
}

TEST_F(FailpointTest, RegisteredSitesAreSortedAndDeduped) {
  RegisterSite("test.reg.b");
  RegisterSite("test.reg.a");
  RegisterSite("test.reg.b");
  std::vector<std::string> sites = RegisteredSites();
  ASSERT_TRUE(std::is_sorted(sites.begin(), sites.end()));
  int a = 0;
  int b = 0;
  for (const std::string& s : sites) {
    if (s == "test.reg.a") ++a;
    if (s == "test.reg.b") ++b;
  }
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

Status StatusSite() {
  FATS_FAILPOINT_STATUS("test.status.site");
  return Status::OK();
}

TEST_F(FailpointTest, StatusMacroInjectsIoError) {
  EXPECT_TRUE(StatusSite().ok());
  ASSERT_TRUE(ArmFromSpec("test.status.site:2:error").ok());
  EXPECT_TRUE(StatusSite().ok());  // hit 1 of 2
  Status injected = StatusSite();
  ASSERT_FALSE(injected.ok());
  EXPECT_EQ(injected.code(), StatusCode::kIoError);
  EXPECT_NE(injected.message().find("test.status.site"), std::string::npos);
  EXPECT_TRUE(StatusSite().ok());  // self-disarmed
}

void VoidSite() { FATS_FAILPOINT("test.void.site"); }

TEST_F(FailpointTest, CrashActionExitsWithCrashCode) {
  EXPECT_EXIT(
      {
        (void)ArmFromSpec("test.void.site:1:crash");
        VoidSite();
      },
      testing::ExitedWithCode(kCrashExitCode), "");
}

TEST_F(FailpointTest, MacroRegistersSiteOnFirstExecution) {
  VoidSite();
  std::vector<std::string> sites = RegisteredSites();
  EXPECT_NE(std::find(sites.begin(), sites.end(), "test.void.site"),
            sites.end());
}

}  // namespace
}  // namespace fats::failpoint
