#include "util/status.h"

#include <gtest/gtest.h>

namespace fats {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("oops").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
  EXPECT_FALSE(Status::Internal("a") == Status::Internal("b"));
  EXPECT_FALSE(Status::Internal("a") == Status::IoError("a"));
}

// GCC 12 emits a spurious -Wmaybe-uninitialized through std::variant's
// destructor for this fully-initialized local (gcc PR 105142 family).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
TEST(ResultTest, HoldsValue) {
  const int forty_two = 42;
  Result<int> r(forty_two);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

Status FailingHelper() { return Status::Internal("inner"); }

Status UsesReturnNotOk() {
  FATS_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_EQ(UsesReturnNotOk().code(), StatusCode::kInternal);
}

Result<int> ProducesInt(bool fail) {
  if (fail) return Status::InvalidArgument("no int for you");
  return 7;
}

Result<int> UsesAssignOrReturn(bool fail) {
  FATS_ASSIGN_OR_RETURN(int v, ProducesInt(fail));
  return v + 1;
}

TEST(ResultTest, AssignOrReturnBindsValue) {
  Result<int> ok = UsesAssignOrReturn(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 8);
  Result<int> err = UsesAssignOrReturn(true);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fats
