// Statistical verification of Theorem 1: exact federated unlearning.
//
// In a tiny discrete instance, the full sampling history (client selections
// per round + mini-batches per iteration) takes finitely many values, and
// the trained model is a deterministic function of it. Definition 1/2
// require the post-unlearning state distribution to equal that of fresh
// training on the reduced data. We draw thousands of histories from both
// processes (randomizing the algorithm seed per trial) and compare the
// empirical distributions with a two-sample chi-square test.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>

#include "core/client_unlearner.h"
#include "core/sample_unlearner.h"
#include "test_workloads.h"

namespace fats {
namespace {

double ChiSquareCritical999(int dof) {
  const double z = 3.0902;
  const double d = static_cast<double>(dof);
  const double term = 1.0 - 2.0 / (9.0 * d) + z * std::sqrt(2.0 / (9.0 * d));
  return d * term * term * term;
}

constexpr int64_t kClients = 3;
constexpr int64_t kSamples = 3;
constexpr int64_t kRounds = 2;
constexpr int64_t kLocalIters = 1;

FatsConfig TinyDiscreteConfig(uint64_t seed) {
  FatsConfig config;
  config.clients_m = kClients;
  config.samples_per_client_n = kSamples;
  config.rounds_r = kRounds;
  config.local_iters_e = kLocalIters;
  // K = ρ_C·E·M/T = 1·1·3/2 -> 1.5 rounds to... choose ρ so K=1, b=1:
  // K = ρ_C·E·M/T = ρ_C·3/2 -> ρ_C = 2/3 gives K = 1.
  // b = ρ_S·N/(ρ_C·E) = ρ_S·3/(2/3) -> ρ_S = 2/9 gives b = 1.
  config.rho_c = 2.0 / 3.0;
  config.rho_s = 2.0 / 9.0;
  config.learning_rate = 0.1;
  config.seed = seed;
  return config;
}

/// Canonical encoding of the recorded sampling history.
std::string EncodeHistory(const FatsTrainer& trainer) {
  std::string out;
  for (int64_t r = 1; r <= kRounds; ++r) {
    const std::vector<int64_t>* selection =
        trainer.store().GetClientSelection(r);
    if (selection == nullptr) continue;
    // Sequential appends rather than `"R" + std::to_string(r) + ...`: the
    // temporary-chain form trips GCC 12's -Wrestrict false positive
    // (PR 105651) at -O3, which the -Werror release preset turns fatal.
    out += "R";
    out += std::to_string(r);
    out += ":[";
    for (int64_t k : *selection) {
      out += std::to_string(k);
      out += ",";
    }
    out += "]";
    for (int64_t t = (r - 1) * kLocalIters + 1; t <= r * kLocalIters; ++t) {
      for (int64_t k = 0; k < kClients; ++k) {
        const std::vector<int64_t>* batch = trainer.store().GetMinibatch(t, k);
        if (batch == nullptr) continue;
        out += "B";
        out += std::to_string(t);
        out += ".";
        out += std::to_string(k);
        out += ":(";
        for (int64_t i : *batch) {
          out += std::to_string(i);
          out += ",";
        }
        out += ")";
      }
    }
  }
  return out;
}

void TwoSampleChiSquare(const std::map<std::string, int>& a,
                        const std::map<std::string, int>& b, int trials) {
  // Pool categories; collapse rare ones (< 10 expected) into one bucket to
  // keep the chi-square approximation valid.
  std::map<std::string, std::pair<int, int>> merged;
  for (const auto& [key, count] : a) merged[key].first = count;
  for (const auto& [key, count] : b) merged[key].second = count;
  double chi2 = 0.0;
  int dof = -1;
  double rare_a = 0.0;
  double rare_b = 0.0;
  for (const auto& [key, pair] : merged) {
    const double total = pair.first + pair.second;
    if (total < 20.0) {
      rare_a += pair.first;
      rare_b += pair.second;
      continue;
    }
    const double expected = total / 2.0;
    chi2 += (pair.first - expected) * (pair.first - expected) / expected;
    chi2 += (pair.second - expected) * (pair.second - expected) / expected;
    ++dof;
  }
  if (rare_a + rare_b >= 20.0) {
    const double expected = (rare_a + rare_b) / 2.0;
    chi2 += (rare_a - expected) * (rare_a - expected) / expected;
    chi2 += (rare_b - expected) * (rare_b - expected) / expected;
    ++dof;
  }
  ASSERT_GT(dof, 0) << "degenerate history space";
  EXPECT_LT(chi2, ChiSquareCritical999(dof))
      << "distributions differ (dof=" << dof << ", trials=" << trials << ")";
}

TEST(ExactUnlearningTest, SampleLevelDistributionMatchesFreshRetrain) {
  const int trials = 4000;
  const SampleRef target{0, 1};
  std::map<std::string, int> fresh_counts;
  std::map<std::string, int> unlearned_counts;
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(trial);
    // Arm A: fresh training on D' (target sample removed up front).
    {
      FederatedDataset data = TinyImageData(kClients, kSamples);
      ASSERT_TRUE(data.RemoveSample(target).ok());
      FatsTrainer trainer(TinyModelSpec(), TinyDiscreteConfig(seed), &data);
      trainer.Train();
      fresh_counts[EncodeHistory(trainer)]++;
    }
    // Arm B: train on D, then FATS-SU unlearns the target.
    {
      FederatedDataset data = TinyImageData(kClients, kSamples);
      FatsConfig config = TinyDiscreteConfig(seed);
      FatsTrainer trainer(TinyModelSpec(), config, &data);
      trainer.Train();
      SampleUnlearner unlearner(&trainer);
      ASSERT_TRUE(unlearner.Unlearn(target, config.total_iters_t()).ok());
      unlearned_counts[EncodeHistory(trainer)]++;
    }
  }
  TwoSampleChiSquare(fresh_counts, unlearned_counts, trials);
}

TEST(ExactUnlearningTest, ClientLevelDistributionMatchesFreshRetrain) {
  const int trials = 4000;
  const int64_t target = 1;
  std::map<std::string, int> fresh_counts;
  std::map<std::string, int> unlearned_counts;
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = 5000 + static_cast<uint64_t>(trial);
    {
      FederatedDataset data = TinyImageData(kClients, kSamples);
      ASSERT_TRUE(data.RemoveClient(target).ok());
      FatsTrainer trainer(TinyModelSpec(), TinyDiscreteConfig(seed), &data);
      trainer.Train();
      fresh_counts[EncodeHistory(trainer)]++;
    }
    {
      FederatedDataset data = TinyImageData(kClients, kSamples);
      FatsConfig config = TinyDiscreteConfig(seed);
      FatsTrainer trainer(TinyModelSpec(), config, &data);
      trainer.Train();
      ClientUnlearner unlearner(&trainer);
      ASSERT_TRUE(unlearner.Unlearn(target, config.total_iters_t()).ok());
      unlearned_counts[EncodeHistory(trainer)]++;
    }
  }
  TwoSampleChiSquare(fresh_counts, unlearned_counts, trials);
}

TEST(ExactUnlearningTest, UnlearnedHistoryNeverContainsTarget) {
  // A qualitative corollary of exactness: the post-unlearning state is
  // supported on histories that avoid the target entirely.
  for (uint64_t seed = 0; seed < 50; ++seed) {
    FederatedDataset data = TinyImageData(kClients, kSamples);
    FatsConfig config = TinyDiscreteConfig(seed);
    FatsTrainer trainer(TinyModelSpec(), config, &data);
    trainer.Train();
    ClientUnlearner unlearner(&trainer);
    ASSERT_TRUE(unlearner.Unlearn(0, config.total_iters_t()).ok());
    const std::string history = EncodeHistory(trainer);
    for (int64_t r = 1; r <= kRounds; ++r) {
      const std::vector<int64_t>* selection =
          trainer.store().GetClientSelection(r);
      ASSERT_NE(selection, nullptr);
      for (int64_t k : *selection) EXPECT_NE(k, 0) << history;
    }
  }
}

TEST(ExactUnlearningTest, NoOpUnlearningPreservesStateBitExactly) {
  // When the target never participated, Definition 1 is satisfied by doing
  // nothing — and the implementation must indeed not touch the state.
  int checked = 0;
  for (uint64_t seed = 0; seed < 200 && checked < 20; ++seed) {
    FederatedDataset data = TinyImageData(kClients, kSamples);
    FatsConfig config = TinyDiscreteConfig(seed);
    FatsTrainer trainer(TinyModelSpec(), config, &data);
    trainer.Train();
    const SampleRef target{2, 2};
    if (trainer.store().EarliestSampleUse(target) != -1) continue;
    const Tensor params = trainer.global_params();
    const std::string history = EncodeHistory(trainer);
    SampleUnlearner unlearner(&trainer);
    ASSERT_TRUE(unlearner.Unlearn(target, config.total_iters_t()).ok());
    EXPECT_TRUE(trainer.global_params().BitwiseEquals(params));
    EXPECT_EQ(EncodeHistory(trainer), history);
    ++checked;
  }
  EXPECT_GE(checked, 5) << "too few no-participation cases sampled";
}

}  // namespace
}  // namespace fats
