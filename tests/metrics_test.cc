#include <gtest/gtest.h>

#include "metrics/evaluation.h"
#include "metrics/unlearning_metrics.h"
#include "test_workloads.h"

namespace fats {
namespace {

TEST(EvaluationTest, ChunkedAccuracyMatchesSingleShot) {
  FederatedDataset data = TinyImageData(4, 10);
  Model model(TinyModelSpec(), 3);
  Batch test = data.global_test().AsBatch();
  const double single = model.EvaluateAccuracy(test.inputs, test.labels);
  EXPECT_DOUBLE_EQ(EvaluateAccuracyChunked(&model, test, 7), single);
  EXPECT_DOUBLE_EQ(EvaluateAccuracyChunked(&model, test, 1000), single);
  EXPECT_DOUBLE_EQ(EvaluateAccuracyChunked(&model, test, 1), single);
}

TEST(EvaluationTest, ChunkedLossMatchesSingleShot) {
  FederatedDataset data = TinyImageData(4, 10);
  Model model(TinyModelSpec(), 3);
  Batch test = data.global_test().AsBatch();
  const double single = model.ComputeLoss(test.inputs, test.labels);
  EXPECT_NEAR(EvaluateLossChunked(&model, test, 13), single, 1e-9);
}

TEST(EvaluationTest, EmptyBatchIsZero) {
  Model model(TinyModelSpec(), 3);
  Batch empty;
  EXPECT_EQ(EvaluateAccuracyChunked(&model, empty), 0.0);
  EXPECT_EQ(EvaluateLossChunked(&model, empty), 0.0);
}

TrainLog MakeLog(std::vector<double> accuracies, size_t recompute_from) {
  TrainLog log;
  for (size_t i = 0; i < accuracies.size(); ++i) {
    RoundRecord record;
    record.round = static_cast<int64_t>(i) + 1;
    record.test_accuracy = accuracies[i];
    record.recomputation = i >= recompute_from;
    log.Append(record);
  }
  return log;
}

TEST(RecoveryMetricsTest, ComputesDropAndRecovery) {
  // Accuracy 0.8 before unlearning; drops to 0.4; recovers at record 5.
  TrainLog log = MakeLog({0.5, 0.8, 0.4, 0.6, 0.75, 0.81}, 2);
  RecoveryMetrics metrics = AnalyzeRecovery(log, 2, 0.95);
  EXPECT_DOUBLE_EQ(metrics.accuracy_before, 0.8);
  EXPECT_DOUBLE_EQ(metrics.accuracy_after_drop, 0.4);
  EXPECT_DOUBLE_EQ(metrics.accuracy_drop, 0.4);
  // Target = 0.95*0.8 = 0.76; reached at index 5 -> 4 rounds after request.
  EXPECT_EQ(metrics.rounds_to_recover, 4);
  EXPECT_DOUBLE_EQ(metrics.final_accuracy, 0.81);
}

TEST(RecoveryMetricsTest, NeverRecoversIsMinusOne) {
  TrainLog log = MakeLog({0.8, 0.3, 0.4}, 1);
  RecoveryMetrics metrics = AnalyzeRecovery(log, 1, 0.95);
  EXPECT_EQ(metrics.rounds_to_recover, -1);
}

TEST(RecoveryMetricsTest, RequestAtEndHasNoDrop) {
  TrainLog log = MakeLog({0.5, 0.7}, 2);
  RecoveryMetrics metrics = AnalyzeRecovery(log, 2, 0.95);
  EXPECT_DOUBLE_EQ(metrics.accuracy_drop, 0.0);
}

TEST(RecoveryMetricsTest, DegenerateInputsReturnDefaults) {
  TrainLog empty;
  RecoveryMetrics metrics = AnalyzeRecovery(empty, 0, 0.95);
  EXPECT_EQ(metrics.rounds_to_recover, -1);
  EXPECT_DOUBLE_EQ(metrics.accuracy_before, 0.0);
  TrainLog log = MakeLog({0.5}, 1);
  metrics = AnalyzeRecovery(log, 5, 0.95);  // out of range
  EXPECT_DOUBLE_EQ(metrics.accuracy_before, 0.0);
}

}  // namespace
}  // namespace fats
