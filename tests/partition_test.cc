#include "data/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace fats {
namespace {

TEST(DrawLdaTest, RowsAreStochastic) {
  auto props = DrawLdaClassProportions(10, 5, 0.5, 1);
  ASSERT_EQ(props.size(), 10u);
  for (const auto& row : props) {
    ASSERT_EQ(row.size(), 5u);
    double sum = 0.0;
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(DrawLdaTest, DeterministicInSeed) {
  auto a = DrawLdaClassProportions(5, 3, 0.5, 7);
  auto b = DrawLdaClassProportions(5, 3, 0.5, 7);
  EXPECT_EQ(a, b);
  auto c = DrawLdaClassProportions(5, 3, 0.5, 8);
  EXPECT_NE(a, c);
}

TEST(DrawLdaTest, SmallBetaIsMoreConcentrated) {
  auto skewed = DrawLdaClassProportions(50, 10, 0.05, 1);
  auto uniform = DrawLdaClassProportions(50, 10, 100.0, 1);
  double skewed_max = 0.0;
  double uniform_max = 0.0;
  for (const auto& row : skewed) {
    skewed_max += *std::max_element(row.begin(), row.end());
  }
  for (const auto& row : uniform) {
    uniform_max += *std::max_element(row.begin(), row.end());
  }
  EXPECT_GT(skewed_max / 50.0, 0.7);
  EXPECT_LT(uniform_max / 50.0, 0.25);
}

TEST(PartitionIidTest, CoversAllIndicesExactlyOnce) {
  auto parts = PartitionIid(100, 7, 3);
  std::set<int64_t> seen;
  for (const auto& part : parts) {
    for (int64_t i : part) {
      EXPECT_TRUE(seen.insert(i).second) << "index assigned twice: " << i;
    }
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(PartitionIidTest, BalancedSizes) {
  auto parts = PartitionIid(100, 7, 3);
  int64_t min_size = 1000, max_size = 0;
  for (const auto& part : parts) {
    min_size = std::min<int64_t>(min_size, part.size());
    max_size = std::max<int64_t>(max_size, part.size());
  }
  EXPECT_LE(max_size - min_size, 1);
}

TEST(PartitionIidTest, IidPartitionHasLowHeterogeneity) {
  std::vector<int64_t> labels(1000);
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int64_t>(i % 4);
  }
  auto parts = PartitionIid(1000, 10, 3);
  EXPECT_LT(PartitionHeterogeneity(parts, labels, 4), 0.12);
}

TEST(PartitionDirichletTest, CoversAllIndicesExactlyOnce) {
  std::vector<int64_t> labels(200);
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int64_t>(i % 5);
  }
  auto parts = PartitionDirichlet(labels, 5, 8, 0.5, 11);
  std::set<int64_t> seen;
  for (const auto& part : parts) {
    for (int64_t i : part) {
      EXPECT_TRUE(seen.insert(i).second);
    }
  }
  EXPECT_EQ(seen.size(), 200u);
}

TEST(PartitionDirichletTest, SmallerBetaMoreHeterogeneous) {
  std::vector<int64_t> labels(2000);
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int64_t>(i % 4);
  }
  auto skewed = PartitionDirichlet(labels, 4, 20, 0.1, 5);
  auto mild = PartitionDirichlet(labels, 4, 20, 10.0, 5);
  EXPECT_GT(PartitionHeterogeneity(skewed, labels, 4),
            PartitionHeterogeneity(mild, labels, 4));
}

TEST(PartitionHeterogeneityTest, ZeroForIdenticalHistograms) {
  std::vector<int64_t> labels = {0, 1, 0, 1};
  std::vector<std::vector<int64_t>> parts = {{0, 1}, {2, 3}};
  EXPECT_NEAR(PartitionHeterogeneity(parts, labels, 2), 0.0, 1e-12);
}

TEST(PartitionHeterogeneityTest, OneForDisjointClasses) {
  std::vector<int64_t> labels = {0, 0, 1, 1};
  std::vector<std::vector<int64_t>> parts = {{0, 1}, {2, 3}};
  EXPECT_NEAR(PartitionHeterogeneity(parts, labels, 2), 0.5, 1e-12);
}

TEST(PartitionHeterogeneityTest, EmptyInputsAreZero) {
  EXPECT_EQ(PartitionHeterogeneity({}, {}, 2), 0.0);
}

}  // namespace
}  // namespace fats
