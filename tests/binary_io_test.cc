#include "util/binary_io.h"

#include <gtest/gtest.h>

namespace fats {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(BinaryIoTest, RoundTripsAllTypes) {
  const std::string path = TempPath("binary_io_roundtrip.bin");
  {
    BinaryWriter writer(path);
    ASSERT_TRUE(writer.status().ok());
    writer.WriteU32(0xDEADBEEFu);
    writer.WriteU64(0x0123456789ABCDEFull);
    writer.WriteI64(-42);
    writer.WriteDouble(3.14159);
    writer.WriteFloat(2.5f);
    writer.WriteString("hello checkpoint");
    writer.WriteI64Vector({1, -2, 3});
    writer.WriteFloatVector({0.5f, -0.25f});
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(path);
  ASSERT_TRUE(reader.status().ok());
  EXPECT_EQ(reader.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.ReadI64().value(), -42);
  EXPECT_DOUBLE_EQ(reader.ReadDouble().value(), 3.14159);
  EXPECT_FLOAT_EQ(reader.ReadFloat().value(), 2.5f);
  EXPECT_EQ(reader.ReadString().value(), "hello checkpoint");
  EXPECT_EQ(reader.ReadI64Vector().value(), (std::vector<int64_t>{1, -2, 3}));
  EXPECT_EQ(reader.ReadFloatVector().value(),
            (std::vector<float>{0.5f, -0.25f}));
  EXPECT_EQ(reader.remaining(), 0);
}

TEST(BinaryIoTest, EmptyContainersRoundTrip) {
  const std::string path = TempPath("binary_io_empty.bin");
  {
    BinaryWriter writer(path);
    writer.WriteString("");
    writer.WriteI64Vector({});
    writer.WriteFloatVector({});
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(path);
  EXPECT_EQ(reader.ReadString().value(), "");
  EXPECT_TRUE(reader.ReadI64Vector().value().empty());
  EXPECT_TRUE(reader.ReadFloatVector().value().empty());
}

TEST(BinaryIoTest, MissingFileFailsCleanly) {
  BinaryReader reader("/nonexistent_dir_zzz/missing.bin");
  EXPECT_FALSE(reader.status().ok());
  EXPECT_FALSE(reader.ReadU32().ok());
}

TEST(BinaryIoTest, UnwritablePathFailsCleanly) {
  BinaryWriter writer("/nonexistent_dir_zzz/out.bin");
  EXPECT_FALSE(writer.status().ok());
  writer.WriteU32(1);  // must not crash
  EXPECT_FALSE(writer.Finish().ok());
}

TEST(BinaryIoTest, TruncatedFileFailsWithoutOverread) {
  const std::string path = TempPath("binary_io_truncated.bin");
  {
    BinaryWriter writer(path);
    writer.WriteU32(7);
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(path);
  EXPECT_TRUE(reader.ReadU32().ok());
  EXPECT_FALSE(reader.ReadU64().ok());  // only 4 bytes existed
}

TEST(BinaryIoTest, CorruptLengthPrefixRejected) {
  const std::string path = TempPath("binary_io_badlen.bin");
  {
    BinaryWriter writer(path);
    // A vector length far larger than the file.
    writer.WriteU64(1ull << 40);
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(path);
  Result<std::vector<int64_t>> v = reader.ReadI64Vector();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kIoError);
}

TEST(BinaryIoTest, RemainingTracksPosition) {
  const std::string path = TempPath("binary_io_remaining.bin");
  {
    BinaryWriter writer(path);
    writer.WriteU64(1);
    writer.WriteU64(2);
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(path);
  EXPECT_EQ(reader.remaining(), 16);
  ASSERT_TRUE(reader.ReadU64().ok());
  EXPECT_EQ(reader.remaining(), 8);
}

}  // namespace
}  // namespace fats
