#include "rng/sampling.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace fats {
namespace {

RngStream MakeStream(uint64_t key) { return RngStream(key); }

TEST(SampleWithoutReplacementTest, ReturnsDistinctInRange) {
  RngStream rng = MakeStream(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int64_t> s = SampleWithoutReplacement(20, 7, &rng);
    ASSERT_EQ(s.size(), 7u);
    std::set<int64_t> distinct(s.begin(), s.end());
    EXPECT_EQ(distinct.size(), 7u);
    for (int64_t v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
}

TEST(SampleWithoutReplacementTest, FullDrawIsPermutation) {
  RngStream rng = MakeStream(2);
  std::vector<int64_t> s = SampleWithoutReplacement(10, 10, &rng);
  std::sort(s.begin(), s.end());
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(s[static_cast<size_t>(i)], i);
}

TEST(SampleWithoutReplacementTest, ZeroDrawIsEmpty) {
  RngStream rng = MakeStream(3);
  EXPECT_TRUE(SampleWithoutReplacement(5, 0, &rng).empty());
}

TEST(SampleWithoutReplacementTest, SubsetsAreUniform) {
  // All C(5,2)=10 subsets of {0..4} should be equally likely.
  RngStream rng = MakeStream(4);
  std::map<std::pair<int64_t, int64_t>, int> counts;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    std::vector<int64_t> s = SampleWithoutReplacement(5, 2, &rng);
    std::sort(s.begin(), s.end());
    counts[{s[0], s[1]}]++;
  }
  ASSERT_EQ(counts.size(), 10u);
  const double expected = draws / 10.0;
  double chi2 = 0.0;
  for (const auto& [subset, c] : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 27.9);  // 99.9% critical value for 9 dof
}

TEST(SampleWithoutReplacementTest, ElementInclusionProbabilityIsKOverN) {
  RngStream rng = MakeStream(5);
  const int draws = 10000;
  int contains_zero = 0;
  for (int i = 0; i < draws; ++i) {
    std::vector<int64_t> s = SampleWithoutReplacement(10, 3, &rng);
    if (std::find(s.begin(), s.end(), 0) != s.end()) ++contains_zero;
  }
  EXPECT_NEAR(static_cast<double>(contains_zero) / draws, 0.3, 0.02);
}

TEST(SampleWithReplacementTest, InRangeAndAllowsRepeats) {
  RngStream rng = MakeStream(6);
  std::vector<int64_t> s = SampleWithReplacement(3, 100, &rng);
  ASSERT_EQ(s.size(), 100u);
  std::set<int64_t> distinct(s.begin(), s.end());
  EXPECT_LE(distinct.size(), 3u);
  // With 100 draws over 3 values a repeat is certain.
  EXPECT_LT(distinct.size(), 100u);
  for (int64_t v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 3);
  }
}

TEST(SampleWithReplacementTest, MarginalIsUniform) {
  RngStream rng = MakeStream(7);
  int counts[4] = {0};
  const int draws = 20000;
  std::vector<int64_t> s = SampleWithReplacement(4, draws, &rng);
  for (int64_t v : s) counts[v]++;
  const double expected = draws / 4.0;
  double chi2 = 0.0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 16.3);  // 99.9% for 3 dof
}

TEST(ShuffleTest, ProducesPermutationUniformly) {
  RngStream rng = MakeStream(8);
  std::map<std::vector<int>, int> counts;
  const int draws = 12000;
  for (int i = 0; i < draws; ++i) {
    std::vector<int> v = {0, 1, 2};
    Shuffle(&v, &rng);
    counts[v]++;
  }
  ASSERT_EQ(counts.size(), 6u);
  const double expected = draws / 6.0;
  for (const auto& [perm, c] : counts) {
    EXPECT_NEAR(c, expected, 5 * std::sqrt(expected));
  }
}

TEST(SampleGammaTest, MeanMatchesShape) {
  RngStream rng = MakeStream(9);
  for (double shape : {0.5, 1.0, 3.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += SampleGamma(shape, &rng);
    EXPECT_NEAR(sum / n, shape, 0.08 * std::max(1.0, shape));
  }
}

TEST(SampleDirichletTest, SumsToOneAndNonNegative) {
  RngStream rng = MakeStream(10);
  std::vector<double> alpha = {0.5, 0.5, 0.5, 0.5};
  for (int i = 0; i < 100; ++i) {
    std::vector<double> p = SampleDirichlet(alpha, &rng);
    double sum = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(SampleDirichletTest, SymmetricAlphaHasUniformMean) {
  RngStream rng = MakeStream(11);
  std::vector<double> alpha = {1.0, 1.0, 1.0};
  std::vector<double> mean(3, 0.0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    std::vector<double> p = SampleDirichlet(alpha, &rng);
    for (int j = 0; j < 3; ++j) mean[static_cast<size_t>(j)] += p[j];
  }
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(mean[static_cast<size_t>(j)] / n, 1.0 / 3.0, 0.01);
  }
}

TEST(SampleDirichletTest, SmallAlphaConcentrates) {
  // β → 0 yields near-one-hot draws (high heterogeneity in LDA terms).
  RngStream rng = MakeStream(12);
  std::vector<double> alpha = {0.05, 0.05, 0.05};
  double max_mass = 0.0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    std::vector<double> p = SampleDirichlet(alpha, &rng);
    max_mass += *std::max_element(p.begin(), p.end());
  }
  EXPECT_GT(max_mass / n, 0.85);
}

TEST(SampleCategoricalTest, MatchesProbabilities) {
  RngStream rng = MakeStream(13);
  std::vector<double> probs = {0.1, 0.2, 0.7};
  int counts[3] = {0};
  const int n = 30000;
  for (int i = 0; i < n; ++i) counts[SampleCategorical(probs, &rng)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.015);
}

TEST(SampleCategoricalTest, UnnormalizedWeightsWork) {
  RngStream rng = MakeStream(14);
  std::vector<double> weights = {1.0, 3.0};
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (SampleCategorical(weights, &rng) == 1) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.75, 0.015);
}

}  // namespace
}  // namespace fats
