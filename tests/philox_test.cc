#include "rng/philox.h"

#include <gtest/gtest.h>

#include <set>

namespace fats {
namespace {

// Known-answer test from the Random123 reference implementation
// (philox4x32-10 counter=ffffffff... key=ffffffff...).
TEST(PhiloxTest, ReferenceVectorAllOnes) {
  PhiloxCounter ctr = {0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu};
  PhiloxKey key = {0xffffffffu, 0xffffffffu};
  PhiloxBlock out = Philox4x32(ctr, key);
  EXPECT_EQ(out[0], 0x408f276du);
  EXPECT_EQ(out[1], 0x41c83b0eu);
  EXPECT_EQ(out[2], 0xa20bc7c6u);
  EXPECT_EQ(out[3], 0x6d5451fdu);
}

TEST(PhiloxTest, ReferenceVectorZeros) {
  PhiloxCounter ctr = {0, 0, 0, 0};
  PhiloxKey key = {0, 0};
  PhiloxBlock out = Philox4x32(ctr, key);
  EXPECT_EQ(out[0], 0x6627e8d5u);
  EXPECT_EQ(out[1], 0xe169c58du);
  EXPECT_EQ(out[2], 0xbc57ac4cu);
  EXPECT_EQ(out[3], 0x9b00dbd8u);
}

TEST(PhiloxTest, DeterministicForSameInputs) {
  PhiloxCounter ctr = {1, 2, 3, 4};
  PhiloxKey key = {5, 6};
  EXPECT_EQ(Philox4x32(ctr, key), Philox4x32(ctr, key));
}

TEST(PhiloxTest, CounterChangesOutput) {
  PhiloxKey key = {5, 6};
  EXPECT_NE(Philox4x32({1, 0, 0, 0}, key), Philox4x32({2, 0, 0, 0}, key));
}

TEST(PhiloxTest, KeyChangesOutput) {
  PhiloxCounter ctr = {1, 2, 3, 4};
  EXPECT_NE(Philox4x32(ctr, {1, 0}), Philox4x32(ctr, {2, 0}));
}

TEST(PhiloxEngineTest, ReplayIsBitIdentical) {
  PhiloxEngine a(12345);
  PhiloxEngine b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(PhiloxEngineTest, DifferentKeysDiffer) {
  PhiloxEngine a(1);
  PhiloxEngine b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(PhiloxEngineTest, SeekToBlockAddressesStream) {
  PhiloxEngine a(99);
  // Consume 8 values = 2 blocks.
  std::vector<uint32_t> first_run;
  for (int i = 0; i < 12; ++i) first_run.push_back(a());
  PhiloxEngine b(99);
  b.SeekToBlock(2);
  // Block 2 corresponds to outputs 8..11.
  for (int i = 8; i < 12; ++i) {
    EXPECT_EQ(first_run[static_cast<size_t>(i)], b());
  }
}

TEST(PhiloxEngineTest, NextUInt64CombinesTwoOutputs) {
  PhiloxEngine a(7);
  PhiloxEngine b(7);
  uint64_t lo = b();
  uint64_t hi = b();
  EXPECT_EQ(a.NextUInt64(), (hi << 32) | lo);
}

TEST(PhiloxEngineTest, OutputLooksUniformAcrossBuckets) {
  PhiloxEngine engine(2024);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 16000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) {
    counts[engine() % kBuckets]++;
  }
  // Chi-square with 15 dof; 99.9% critical value ~ 37.7.
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 37.7);
}

TEST(SplitMix64Test, KnownValuesAndBijectivityOnSample) {
  // SplitMix64 must be deterministic and collision-free on a sample.
  std::set<uint64_t> outputs;
  for (uint64_t x = 0; x < 2000; ++x) outputs.insert(SplitMix64(x));
  EXPECT_EQ(outputs.size(), 2000u);
  EXPECT_EQ(SplitMix64(0), SplitMix64(0));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
}

}  // namespace
}  // namespace fats
