#include "core/client_unlearner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_workloads.h"

namespace fats {
namespace {

struct Trained {
  FederatedDataset data;
  FatsConfig config;
  std::unique_ptr<FatsTrainer> trainer;
};

Trained TrainTiny(int64_t clients = 10, int64_t n = 10, int64_t rounds = 4,
                  int64_t e = 3, double rho_c = 0.5, uint64_t seed = 7) {
  Trained t;
  t.data = TinyImageData(clients, n);
  t.config = TinyFatsConfig(clients, n, rounds, e, 0.5, rho_c, seed);
  t.trainer =
      std::make_unique<FatsTrainer>(TinyModelSpec(), t.config, &t.data);
  t.trainer->Train();
  return t;
}

int64_t FindParticipant(const FatsTrainer& trainer,
                        const FederatedDataset& data) {
  for (int64_t k = 0; k < data.num_clients(); ++k) {
    if (trainer.store().EarliestClientRound(k) >= 1) return k;
  }
  ADD_FAILURE() << "no participating client found";
  return 0;
}

int64_t FindNonParticipant(const FatsTrainer& trainer,
                           const FederatedDataset& data) {
  for (int64_t k = 0; k < data.num_clients(); ++k) {
    if (trainer.store().EarliestClientRound(k) == -1) return k;
  }
  return -1;
}

TEST(ClientUnlearnerTest, NonParticipantNeedsNoRecomputation) {
  Trained t = TrainTiny(/*clients=*/16);
  const int64_t target = FindNonParticipant(*t.trainer, t.data);
  ASSERT_GE(target, 0) << "all clients participated; enlarge M";
  const Tensor before = t.trainer->global_params();
  ClientUnlearner unlearner(t.trainer.get());
  Result<UnlearningOutcome> outcome =
      unlearner.Unlearn(target, t.config.total_iters_t());
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->recomputed);
  EXPECT_TRUE(t.trainer->global_params().BitwiseEquals(before));
  EXPECT_FALSE(t.data.client_active(target));
}

TEST(ClientUnlearnerTest, ParticipantTriggersRecomputationFromFirstRound) {
  Trained t = TrainTiny();
  const int64_t target = FindParticipant(*t.trainer, t.data);
  const int64_t first_round = t.trainer->store().EarliestClientRound(target);
  ClientUnlearner unlearner(t.trainer.get());
  Result<UnlearningOutcome> outcome =
      unlearner.Unlearn(target, t.config.total_iters_t());
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->recomputed);
  EXPECT_EQ(outcome->restart_iteration,
            (first_round - 1) * t.config.local_iters_e + 1);
  EXPECT_EQ(outcome->recomputed_rounds,
            t.config.rounds_r - first_round + 1);
  EXPECT_FALSE(t.data.client_active(target));
}

TEST(ClientUnlearnerTest, RecomputedSelectionsExcludeRemovedClient) {
  Trained t = TrainTiny();
  const int64_t target = FindParticipant(*t.trainer, t.data);
  ClientUnlearner unlearner(t.trainer.get());
  ASSERT_TRUE(unlearner.Unlearn(target, t.config.total_iters_t()).ok());
  // The refreshed state must never select the removed client.
  EXPECT_EQ(t.trainer->store().EarliestClientRound(target), -1);
  for (int64_t r = 1; r <= t.config.rounds_r; ++r) {
    const std::vector<int64_t>* selection =
        t.trainer->store().GetClientSelection(r);
    ASSERT_NE(selection, nullptr);
    for (int64_t k : *selection) EXPECT_NE(k, target);
  }
}

TEST(ClientUnlearnerTest, RequestBeforeFirstParticipationSkips) {
  Trained t = TrainTiny();
  // Find a client whose first participation is strictly after round 1.
  int64_t target = -1;
  int64_t first_round = -1;
  for (int64_t k = 0; k < t.data.num_clients(); ++k) {
    const int64_t round = t.trainer->store().EarliestClientRound(k);
    if (round > 1) {
      target = k;
      first_round = round;
      break;
    }
  }
  ASSERT_GE(target, 0) << "every participant joined in round 1";
  const int64_t t_u = (first_round - 1) * t.config.local_iters_e;  // before
  ClientUnlearner unlearner(t.trainer.get());
  Result<UnlearningOutcome> outcome = unlearner.Unlearn(target, t_u);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->recomputed);
}

TEST(ClientUnlearnerTest, DoubleRemoveFails) {
  Trained t = TrainTiny();
  const int64_t target = FindParticipant(*t.trainer, t.data);
  ClientUnlearner unlearner(t.trainer.get());
  ASSERT_TRUE(unlearner.Unlearn(target, t.config.total_iters_t()).ok());
  EXPECT_EQ(
      unlearner.Unlearn(target, t.config.total_iters_t()).status().code(),
      StatusCode::kFailedPrecondition);
}

TEST(ClientUnlearnerTest, OutOfRangeTargetFails) {
  Trained t = TrainTiny();
  ClientUnlearner unlearner(t.trainer.get());
  EXPECT_EQ(unlearner.Unlearn(999, 1).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(unlearner.Unlearn(-1, 1).status().code(),
            StatusCode::kOutOfRange);
}

TEST(ClientUnlearnerTest, BatchRemovesAllAndRestartsOnce) {
  Trained t = TrainTiny(12, 10, 5, 3);
  std::vector<int64_t> targets;
  int64_t earliest = t.config.rounds_r + 1;
  for (int64_t k = 0; k < t.data.num_clients() && targets.size() < 2; ++k) {
    const int64_t round = t.trainer->store().EarliestClientRound(k);
    if (round >= 1) {
      targets.push_back(k);
      earliest = std::min(earliest, round);
    }
  }
  ASSERT_EQ(targets.size(), 2u);
  ClientUnlearner unlearner(t.trainer.get());
  Result<UnlearningOutcome> outcome =
      unlearner.UnlearnBatch(targets, t.config.total_iters_t());
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->recomputed);
  EXPECT_EQ(outcome->restart_iteration,
            (earliest - 1) * t.config.local_iters_e + 1);
  for (int64_t target : targets) {
    EXPECT_FALSE(t.data.client_active(target));
  }
}

TEST(ClientUnlearnerTest, DuplicateClientTargetRejectedWithoutMutation) {
  Trained t = TrainTiny();
  const int64_t target = FindParticipant(*t.trainer, t.data);
  const uint64_t gen_before = t.trainer->generation();
  ClientUnlearner unlearner(t.trainer.get());
  Result<UnlearningOutcome> outcome =
      unlearner.UnlearnBatch({target, target}, t.config.total_iters_t());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(t.data.client_active(target));
  EXPECT_EQ(t.trainer->generation(), gen_before);
}

TEST(ClientUnlearnerTest, UnlearnedModelKeepsUtility) {
  Trained t = TrainTiny(10, 12, 10, 3);
  const double acc_before = t.trainer->EvaluateTestAccuracy();
  ClientUnlearner unlearner(t.trainer.get());
  const int64_t target = FindParticipant(*t.trainer, t.data);
  ASSERT_TRUE(unlearner.Unlearn(target, t.config.total_iters_t()).ok());
  EXPECT_GT(t.trainer->EvaluateTestAccuracy(), acc_before - 0.2);
}

TEST(ClientUnlearnerTest, SequentialRemovalsKeepWorking) {
  Trained t = TrainTiny(12, 10, 4, 3);
  ClientUnlearner unlearner(t.trainer.get());
  for (int removed = 0; removed < 3; ++removed) {
    const int64_t target = FindParticipant(*t.trainer, t.data);
    ASSERT_TRUE(t.data.client_active(target));
    ASSERT_TRUE(unlearner.Unlearn(target, t.config.total_iters_t()).ok());
  }
  EXPECT_EQ(t.data.num_active_clients(), 9);
}

}  // namespace
}  // namespace fats
