#include "core/sample_unlearner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_workloads.h"

namespace fats {
namespace {

struct Trained {
  FederatedDataset data;
  FatsConfig config;
  std::unique_ptr<FatsTrainer> trainer;
};

Trained TrainTiny(int64_t clients = 6, int64_t n = 10, int64_t rounds = 4,
                  int64_t e = 3, uint64_t seed = 7) {
  Trained t;
  t.data = TinyImageData(clients, n);
  t.config = TinyFatsConfig(clients, n, rounds, e, 0.5, 0.5, seed);
  t.trainer =
      std::make_unique<FatsTrainer>(TinyModelSpec(), t.config, &t.data);
  t.trainer->Train();
  return t;
}

/// A sample that participated in training (earliest use >= 1).
SampleRef FindUsedSample(const FatsTrainer& trainer,
                         const FederatedDataset& data) {
  for (int64_t k = 0; k < data.num_clients(); ++k) {
    for (int64_t i = 0; i < data.samples_of(k); ++i) {
      if (trainer.store().EarliestSampleUse({k, i}) >= 1) return {k, i};
    }
  }
  ADD_FAILURE() << "no used sample found";
  return {0, 0};
}

/// A sample that never participated, or (-1,-1) if all were used.
SampleRef FindUnusedSample(const FatsTrainer& trainer,
                           const FederatedDataset& data) {
  for (int64_t k = 0; k < data.num_clients(); ++k) {
    for (int64_t i = 0; i < data.samples_of(k); ++i) {
      if (trainer.store().EarliestSampleUse({k, i}) == -1) return {k, i};
    }
  }
  return {-1, -1};
}

TEST(SampleUnlearnerTest, UnusedSampleNeedsNoRecomputation) {
  Trained t = TrainTiny();
  SampleRef unused = FindUnusedSample(*t.trainer, t.data);
  ASSERT_GE(unused.client, 0) << "workload too small: every sample used";
  const Tensor before = t.trainer->global_params();
  SampleUnlearner unlearner(t.trainer.get());
  Result<UnlearningOutcome> outcome =
      unlearner.Unlearn(unused, t.config.total_iters_t());
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->recomputed);
  EXPECT_EQ(outcome->recomputed_iterations, 0);
  // Model untouched; sample deleted.
  EXPECT_TRUE(t.trainer->global_params().BitwiseEquals(before));
  EXPECT_FALSE(t.data.sample_active(unused.client, unused.index));
}

TEST(SampleUnlearnerTest, UsedSampleTriggersRecomputationFromFirstUse) {
  Trained t = TrainTiny();
  SampleRef used = FindUsedSample(*t.trainer, t.data);
  const int64_t first_use = t.trainer->store().EarliestSampleUse(used);
  SampleUnlearner unlearner(t.trainer.get());
  Result<UnlearningOutcome> outcome =
      unlearner.Unlearn(used, t.config.total_iters_t());
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->recomputed);
  EXPECT_EQ(outcome->restart_iteration, first_use);
  EXPECT_EQ(outcome->recomputed_iterations,
            t.config.total_iters_t() - first_use + 1);
  EXPECT_FALSE(t.data.sample_active(used.client, used.index));
}

TEST(SampleUnlearnerTest, RecomputedStateNeverReferencesDeletedSample) {
  Trained t = TrainTiny();
  SampleRef used = FindUsedSample(*t.trainer, t.data);
  SampleUnlearner unlearner(t.trainer.get());
  ASSERT_TRUE(unlearner.Unlearn(used, t.config.total_iters_t()).ok());
  // After unlearning, no recorded mini-batch may contain the sample.
  EXPECT_EQ(t.trainer->store().EarliestSampleUse(used), -1);
}

TEST(SampleUnlearnerTest, RequestBeforeFirstUseSkipsRecomputation) {
  Trained t = TrainTiny();
  // Find a sample whose first use is strictly after iteration 1.
  SampleRef used{-1, -1};
  int64_t first_use = -1;
  for (int64_t k = 0; k < t.data.num_clients() && used.client < 0; ++k) {
    for (int64_t i = 0; i < t.data.samples_of(k); ++i) {
      const int64_t use = t.trainer->store().EarliestSampleUse({k, i});
      if (use > 1) {
        used = {k, i};
        first_use = use;
        break;
      }
    }
  }
  ASSERT_GE(used.client, 0) << "every used sample was used at iteration 1";
  SampleUnlearner unlearner(t.trainer.get());
  // Request issued before the sample was ever used: no discrepancy within
  // [1, t_u], so no re-computation.
  Result<UnlearningOutcome> outcome = unlearner.Unlearn(used, first_use - 1);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->recomputed);
}

TEST(SampleUnlearnerTest, DoubleUnlearnFails) {
  Trained t = TrainTiny();
  SampleRef used = FindUsedSample(*t.trainer, t.data);
  SampleUnlearner unlearner(t.trainer.get());
  ASSERT_TRUE(unlearner.Unlearn(used, t.config.total_iters_t()).ok());
  Result<UnlearningOutcome> again =
      unlearner.Unlearn(used, t.config.total_iters_t());
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SampleUnlearnerTest, InvalidRequestIterFails) {
  Trained t = TrainTiny();
  SampleUnlearner unlearner(t.trainer.get());
  EXPECT_FALSE(unlearner.Unlearn({0, 0}, 0).ok());
  EXPECT_FALSE(
      unlearner.Unlearn({0, 0}, t.config.total_iters_t() + 1).ok());
}

TEST(SampleUnlearnerTest, BatchRestartsFromEarliestUse) {
  Trained t = TrainTiny(8, 12, 5, 3);
  // Collect two used samples with different first-use times if possible.
  std::vector<SampleRef> targets;
  int64_t min_use = t.config.total_iters_t() + 1;
  for (int64_t k = 0; k < t.data.num_clients() && targets.size() < 3; ++k) {
    for (int64_t i = 0; i < t.data.samples_of(k) && targets.size() < 3;
         ++i) {
      const int64_t use = t.trainer->store().EarliestSampleUse({k, i});
      if (use >= 1) {
        targets.push_back({k, i});
        min_use = std::min(min_use, use);
      }
    }
  }
  ASSERT_GE(targets.size(), 2u);
  SampleUnlearner unlearner(t.trainer.get());
  Result<UnlearningOutcome> outcome =
      unlearner.UnlearnBatch(targets, t.config.total_iters_t());
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->recomputed);
  EXPECT_EQ(outcome->restart_iteration, min_use);
  for (const SampleRef& target : targets) {
    EXPECT_FALSE(t.data.sample_active(target.client, target.index));
  }
}

TEST(SampleUnlearnerTest, UnlearnedModelKeepsUtility) {
  // Remark 4: with O(MN) samples remaining the unlearned model's accuracy
  // stays in the same regime.
  Trained t = TrainTiny(8, 12, 10, 3);
  const double acc_before = t.trainer->EvaluateTestAccuracy();
  SampleUnlearner unlearner(t.trainer.get());
  SampleRef used = FindUsedSample(*t.trainer, t.data);
  ASSERT_TRUE(unlearner.Unlearn(used, t.config.total_iters_t()).ok());
  const double acc_after = t.trainer->EvaluateTestAccuracy();
  EXPECT_GT(acc_after, acc_before - 0.2);
}

TEST(SampleUnlearnerTest, DuplicateTargetInBatchRejectedWithoutMutation) {
  Trained t = TrainTiny();
  SampleRef used = FindUsedSample(*t.trainer, t.data);
  const Tensor before = t.trainer->global_params();
  const uint64_t gen_before = t.trainer->generation();
  SampleUnlearner unlearner(t.trainer.get());
  Result<UnlearningOutcome> outcome =
      unlearner.UnlearnBatch({used, used}, t.config.total_iters_t());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  // Validation precedes every mutation: the sample survives, nothing moved.
  EXPECT_TRUE(t.data.sample_active(used.client, used.index));
  EXPECT_TRUE(t.trainer->global_params().BitwiseEquals(before));
  EXPECT_EQ(t.trainer->generation(), gen_before);
}

TEST(SampleUnlearnerTest, BatchEmptyingClientRejectedBeforeMutation) {
  Trained t = TrainTiny();
  // Every sample of client 0 in one batch would leave it with nothing to
  // train on — rejected up front, before any deletion happens.
  std::vector<SampleRef> all;
  for (int64_t i = 0; i < t.data.samples_of(0); ++i) all.push_back({0, i});
  const uint64_t gen_before = t.trainer->generation();
  SampleUnlearner unlearner(t.trainer.get());
  Result<UnlearningOutcome> outcome =
      unlearner.UnlearnBatch(all, t.config.total_iters_t());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
  for (const SampleRef& ref : all) {
    EXPECT_TRUE(t.data.sample_active(ref.client, ref.index));
  }
  EXPECT_EQ(t.data.num_active_samples(0), t.data.samples_of(0));
  EXPECT_EQ(t.trainer->generation(), gen_before);
}

TEST(SampleUnlearnerTest, UntriggeredBatchStillReportsReplayedWork) {
  Trained t = TrainTiny();
  // Find a sample first used strictly after iteration 1 and request at an
  // earlier iteration: Theorem 3's trigger never fires (recomputed_* zero),
  // yet the substitution forces a replay whose cost must be accounted.
  SampleRef used{-1, -1};
  int64_t first_use = -1;
  for (int64_t k = 0; k < t.data.num_clients() && used.client < 0; ++k) {
    for (int64_t i = 0; i < t.data.samples_of(k); ++i) {
      const int64_t use = t.trainer->store().EarliestSampleUse({k, i});
      if (use > 1) {
        used = {k, i};
        first_use = use;
        break;
      }
    }
  }
  ASSERT_GE(used.client, 0);
  SampleUnlearner unlearner(t.trainer.get());
  Result<UnlearningOutcome> outcome = unlearner.Unlearn(used, first_use - 1);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->recomputed);
  EXPECT_EQ(outcome->recomputed_iterations, 0);
  EXPECT_EQ(outcome->first_replayed_iteration, first_use);
  EXPECT_EQ(outcome->replayed_iterations,
            t.config.total_iters_t() - first_use + 1);
}

TEST(SampleUnlearnerTest, RecomputationAppendsFlaggedLogRecords) {
  Trained t = TrainTiny();
  const size_t log_before = t.trainer->log().records().size();
  SampleUnlearner unlearner(t.trainer.get());
  SampleRef used = FindUsedSample(*t.trainer, t.data);
  Result<UnlearningOutcome> outcome =
      unlearner.Unlearn(used, t.config.total_iters_t());
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->recomputed);
  const auto& records = t.trainer->log().records();
  EXPECT_GT(records.size(), log_before);
  for (size_t i = log_before; i < records.size(); ++i) {
    EXPECT_TRUE(records[i].recomputation);
  }
}

}  // namespace
}  // namespace fats
