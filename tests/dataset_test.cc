#include "data/dataset.h"

#include <gtest/gtest.h>

namespace fats {
namespace {

InMemoryDataset MakeDataset() {
  Tensor features({4, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  return InMemoryDataset(std::move(features), {0, 1, 0, 1}, 2);
}

TEST(InMemoryDatasetTest, BasicAccessors) {
  InMemoryDataset ds = MakeDataset();
  EXPECT_EQ(ds.size(), 4);
  EXPECT_EQ(ds.feature_dim(), 2);
  EXPECT_EQ(ds.num_classes(), 2);
  EXPECT_EQ(ds.label(2), 0);
}

TEST(InMemoryDatasetTest, DefaultIsEmpty) {
  InMemoryDataset ds;
  EXPECT_EQ(ds.size(), 0);
  EXPECT_EQ(ds.feature_dim(), 0);
}

TEST(InMemoryDatasetTest, GatherBatchSelectsRows) {
  InMemoryDataset ds = MakeDataset();
  Batch batch = ds.GatherBatch({3, 0});
  ASSERT_EQ(batch.size(), 2);
  EXPECT_FLOAT_EQ(batch.inputs.at(0, 0), 6);
  EXPECT_FLOAT_EQ(batch.inputs.at(0, 1), 7);
  EXPECT_FLOAT_EQ(batch.inputs.at(1, 0), 0);
  EXPECT_EQ(batch.labels[0], 1);
  EXPECT_EQ(batch.labels[1], 0);
}

TEST(InMemoryDatasetTest, GatherBatchAllowsRepeats) {
  InMemoryDataset ds = MakeDataset();
  Batch batch = ds.GatherBatch({1, 1});
  EXPECT_EQ(batch.size(), 2);
  EXPECT_FLOAT_EQ(batch.inputs.at(0, 0), batch.inputs.at(1, 0));
}

TEST(InMemoryDatasetTest, AsBatchContainsEverything) {
  InMemoryDataset ds = MakeDataset();
  Batch batch = ds.AsBatch();
  EXPECT_EQ(batch.size(), 4);
  EXPECT_EQ(batch.labels.size(), 4u);
}

TEST(InMemoryDatasetTest, AppendConcatenates) {
  InMemoryDataset a = MakeDataset();
  InMemoryDataset b = MakeDataset();
  a.Append(b);
  EXPECT_EQ(a.size(), 8);
  EXPECT_FLOAT_EQ(a.features().at(4, 0), 0);
  EXPECT_EQ(a.label(5), 1);
}

TEST(InMemoryDatasetTest, AppendToEmptyAdopts) {
  InMemoryDataset empty;
  empty.Append(MakeDataset());
  EXPECT_EQ(empty.size(), 4);
}

TEST(InMemoryDatasetDeathTest, LabelOutOfRangeAborts) {
  Tensor features({1, 1});
  EXPECT_DEATH(InMemoryDataset(std::move(features), {5}, 2),
               "label out of range");
}

TEST(InMemoryDatasetDeathTest, GatherOutOfRangeAborts) {
  InMemoryDataset ds = MakeDataset();
  EXPECT_DEATH(ds.GatherBatch({9}), "out of range");
}

TEST(InMemoryDatasetTest, ToStringMentionsSize) {
  EXPECT_NE(MakeDataset().ToString().find("n=4"), std::string::npos);
}

}  // namespace
}  // namespace fats
