#include "tensor/tensor_ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fats {
namespace {

TEST(MatMulTest, KnownProduct) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.dim(0), 2);
  ASSERT_EQ(c.dim(1), 2);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(MatMulTest, IdentityIsNoop) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor eye({2, 2}, {1, 0, 0, 1});
  EXPECT_TRUE(MatMul(a, eye).BitwiseEquals(a));
}

TEST(MatMulTransposeBTest, MatchesExplicitTranspose) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({4, 3}, {1, 0, 2, -1, 3, 1, 0, 1, 0, 2, -2, 1});
  Tensor direct = MatMulTransposeB(a, b);
  Tensor via_transpose = MatMul(a, Transpose(b));
  EXPECT_TRUE(direct.AllClose(via_transpose, 1e-6f));
}

TEST(MatMulTransposeATest, MatchesExplicitTranspose) {
  Tensor a({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 4}, {1, 0, 2, -1, 3, 1, 0, 1, 0, 2, -2, 1});
  Tensor direct = MatMulTransposeA(a, b);
  Tensor via_transpose = MatMul(Transpose(a), b);
  EXPECT_TRUE(direct.AllClose(via_transpose, 1e-6f));
}

TEST(AddRowwiseTest, AddsBiasToEveryRow) {
  Tensor m({2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor bias({3}, {10, 20, 30});
  AddRowwise(&m, bias);
  EXPECT_FLOAT_EQ(m.at(0, 0), 10);
  EXPECT_FLOAT_EQ(m.at(1, 2), 31);
}

TEST(SumRowsTest, ColumnSums) {
  Tensor m({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = SumRows(m);
  ASSERT_EQ(s.rank(), 1);
  EXPECT_FLOAT_EQ(s[0], 5);
  EXPECT_FLOAT_EQ(s[1], 7);
  EXPECT_FLOAT_EQ(s[2], 9);
}

TEST(HadamardTest, ElementwiseProduct) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  Tensor c = Hadamard(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 5);
  EXPECT_FLOAT_EQ(c.at(1, 1), 32);
}

TEST(TransposeTest, SwapsDims) {
  Tensor m({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(m);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 2);
  EXPECT_FLOAT_EQ(t.at(0, 1), 4);
  EXPECT_FLOAT_EQ(t.at(2, 0), 3);
}

TEST(SoftmaxRowsTest, RowsSumToOne) {
  Tensor logits({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor p = SoftmaxRows(logits);
  for (int64_t i = 0; i < 2; ++i) {
    double sum = 0.0;
    for (int64_t j = 0; j < 3; ++j) sum += p.at(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST(SoftmaxRowsTest, MonotoneInLogits) {
  Tensor logits({1, 3}, {1, 2, 3});
  Tensor p = SoftmaxRows(logits);
  EXPECT_LT(p.at(0, 0), p.at(0, 1));
  EXPECT_LT(p.at(0, 1), p.at(0, 2));
}

TEST(SoftmaxRowsTest, NumericallyStableForLargeLogits) {
  Tensor logits({1, 2}, {1000.0f, 1000.0f});
  Tensor p = SoftmaxRows(logits);
  EXPECT_NEAR(p.at(0, 0), 0.5, 1e-6);
  EXPECT_FALSE(std::isnan(p.at(0, 1)));
}

TEST(SoftmaxRowsTest, KnownValues) {
  Tensor logits({1, 2}, {0.0f, std::log(3.0f)});
  Tensor p = SoftmaxRows(logits);
  EXPECT_NEAR(p.at(0, 0), 0.25, 1e-6);
  EXPECT_NEAR(p.at(0, 1), 0.75, 1e-6);
}

TEST(MatMulDeathTest, InnerDimMismatchAborts) {
  Tensor a({2, 3});
  Tensor b({2, 2});
  EXPECT_DEATH(MatMul(a, b), "inner dims");
}

}  // namespace
}  // namespace fats
