#include "tensor/tensor_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "rng/rng_stream.h"

namespace fats {
namespace {

TEST(MatMulTest, KnownProduct) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.dim(0), 2);
  ASSERT_EQ(c.dim(1), 2);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(MatMulTest, IdentityIsNoop) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor eye({2, 2}, {1, 0, 0, 1});
  EXPECT_TRUE(MatMul(a, eye).BitwiseEquals(a));
}

TEST(MatMulTransposeBTest, MatchesExplicitTranspose) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({4, 3}, {1, 0, 2, -1, 3, 1, 0, 1, 0, 2, -2, 1});
  Tensor direct = MatMulTransposeB(a, b);
  Tensor via_transpose = MatMul(a, Transpose(b));
  EXPECT_TRUE(direct.AllClose(via_transpose, 1e-6f));
}

TEST(MatMulTransposeATest, MatchesExplicitTranspose) {
  Tensor a({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 4}, {1, 0, 2, -1, 3, 1, 0, 1, 0, 2, -2, 1});
  Tensor direct = MatMulTransposeA(a, b);
  Tensor via_transpose = MatMul(Transpose(a), b);
  EXPECT_TRUE(direct.AllClose(via_transpose, 1e-6f));
}

TEST(AddRowwiseTest, AddsBiasToEveryRow) {
  Tensor m({2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor bias({3}, {10, 20, 30});
  AddRowwise(&m, bias);
  EXPECT_FLOAT_EQ(m.at(0, 0), 10);
  EXPECT_FLOAT_EQ(m.at(1, 2), 31);
}

TEST(SumRowsTest, ColumnSums) {
  Tensor m({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = SumRows(m);
  ASSERT_EQ(s.rank(), 1);
  EXPECT_FLOAT_EQ(s[0], 5);
  EXPECT_FLOAT_EQ(s[1], 7);
  EXPECT_FLOAT_EQ(s[2], 9);
}

TEST(HadamardTest, ElementwiseProduct) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  Tensor c = Hadamard(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 5);
  EXPECT_FLOAT_EQ(c.at(1, 1), 32);
}

TEST(TransposeTest, SwapsDims) {
  Tensor m({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(m);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 2);
  EXPECT_FLOAT_EQ(t.at(0, 1), 4);
  EXPECT_FLOAT_EQ(t.at(2, 0), 3);
}

TEST(SoftmaxRowsTest, RowsSumToOne) {
  Tensor logits({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor p = SoftmaxRows(logits);
  for (int64_t i = 0; i < 2; ++i) {
    double sum = 0.0;
    for (int64_t j = 0; j < 3; ++j) sum += p.at(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST(SoftmaxRowsTest, MonotoneInLogits) {
  Tensor logits({1, 3}, {1, 2, 3});
  Tensor p = SoftmaxRows(logits);
  EXPECT_LT(p.at(0, 0), p.at(0, 1));
  EXPECT_LT(p.at(0, 1), p.at(0, 2));
}

TEST(SoftmaxRowsTest, NumericallyStableForLargeLogits) {
  Tensor logits({1, 2}, {1000.0f, 1000.0f});
  Tensor p = SoftmaxRows(logits);
  EXPECT_NEAR(p.at(0, 0), 0.5, 1e-6);
  EXPECT_FALSE(std::isnan(p.at(0, 1)));
}

TEST(SoftmaxRowsTest, KnownValues) {
  Tensor logits({1, 2}, {0.0f, std::log(3.0f)});
  Tensor p = SoftmaxRows(logits);
  EXPECT_NEAR(p.at(0, 0), 0.25, 1e-6);
  EXPECT_NEAR(p.at(0, 1), 0.75, 1e-6);
}

TEST(MatMulDeathTest, InnerDimMismatchAborts) {
  Tensor a({2, 3});
  Tensor b({2, 2});
  EXPECT_DEATH(MatMul(a, b), "inner dims");
}

// ---- Destination-passing (Into / AddInto) forms ----

Tensor RandomTensor(std::vector<int64_t> shape, RngStream* rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->NextDouble() * 2.0 - 1.0);
  }
  return t;
}

TEST(MatMulIntoTest, MatchesValueFormBitwise) {
  RngStream rng(uint64_t{31});
  Tensor a = RandomTensor({5, 7}, &rng);
  Tensor b = RandomTensor({7, 9}, &rng);
  Tensor out;
  MatMulInto(a, b, &out);
  EXPECT_TRUE(out.BitwiseEquals(MatMul(a, b)));
  // Reuse with a different shape resizes in place.
  Tensor a2 = RandomTensor({2, 7}, &rng);
  MatMulInto(a2, b, &out);
  ASSERT_EQ(out.dim(0), 2);
  EXPECT_TRUE(out.BitwiseEquals(MatMul(a2, b)));
}

TEST(MatMulIntoTest, AddFormAccumulates) {
  RngStream rng(uint64_t{32});
  Tensor a = RandomTensor({4, 6}, &rng);
  Tensor b = RandomTensor({6, 3}, &rng);
  Tensor acc = RandomTensor({4, 3}, &rng);
  const Tensor acc0 = acc;
  AddMatMulInto(a, b, &acc);
  // Same chain as the reference: acc starts from the prior destination.
  Tensor expect = acc0;
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      float s = expect.at(i, j);
      for (int64_t k = 0; k < 6; ++k) s += a.at(i, k) * b.at(k, j);
      expect.at(i, j) = s;
    }
  }
  EXPECT_TRUE(acc.BitwiseEquals(expect));
}

TEST(MatMulIntoTest, TransposeFormsMatchValueForms) {
  RngStream rng(uint64_t{33});
  Tensor x = RandomTensor({4, 6}, &rng);
  Tensor w = RandomTensor({5, 6}, &rng);  // for x @ w^T
  Tensor out;
  MatMulTransposeBInto(x, w, &out);
  EXPECT_TRUE(out.BitwiseEquals(MatMulTransposeB(x, w)));

  Tensor g = RandomTensor({4, 5}, &rng);
  Tensor ta;
  MatMulTransposeAInto(g, x, &ta);  // g^T @ x : (5 x 6)
  EXPECT_TRUE(ta.BitwiseEquals(MatMulTransposeA(g, x)));

  // AddInto variants accumulate on top of the plain result. The doubled
  // value is only approximately 2x (the accumulation chains round
  // differently), so compare with a small absolute tolerance.
  Tensor acc = out;
  AddMatMulTransposeBInto(x, w, &acc);
  for (int64_t i = 0; i < acc.size(); ++i) {
    EXPECT_NEAR(acc[i], out[i] + out[i], 1e-5f);
  }
  Tensor tacc = ta;
  AddMatMulTransposeAInto(g, x, &tacc);
  for (int64_t i = 0; i < tacc.size(); ++i) {
    EXPECT_NEAR(tacc[i], ta[i] + ta[i], 1e-5f);
  }
}

TEST(SumRowsIntoTest, AddFormAccumulates) {
  Tensor m({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor acc({3}, {10, 20, 30});
  AddSumRowsInto(m, &acc);
  EXPECT_FLOAT_EQ(acc[0], 15);
  EXPECT_FLOAT_EQ(acc[1], 27);
  EXPECT_FLOAT_EQ(acc[2], 39);
}

TEST(HadamardIntoTest, MatchesValueForm) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  Tensor out;
  HadamardInto(a, b, &out);
  EXPECT_TRUE(out.BitwiseEquals(Hadamard(a, b)));
}

TEST(SoftmaxRowsIntoTest, MatchesValueForm) {
  Tensor logits({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor out;
  SoftmaxRowsInto(logits, &out);
  EXPECT_TRUE(out.BitwiseEquals(SoftmaxRows(logits)));
}

// ---- Deterministic-kernel property: blocked GEMM == canonical order ----

// MatMul must be bitwise the canonical fixed-order chain
// C[i][j] = fl(...fl(fl(a_i0*b_0j) + fl(a_i1*b_1j))... ) regardless of how
// the blocked kernels tile or vectorise. Shapes cover micro-tile edges.
TEST(MatMulPropertyTest, BitIdenticalToCanonicalTripleLoop) {
  RngStream rng(uint64_t{34});
  const int64_t dims[][3] = {{1, 1, 1},   {3, 5, 2},   {6, 16, 8},
                             {7, 17, 19}, {12, 33, 7}, {23, 29, 31}};
  for (const auto& d : dims) {
    const int64_t m = d[0], n = d[1], k = d[2];
    Tensor a = RandomTensor({m, k}, &rng);
    Tensor b = RandomTensor({k, n}, &rng);
    Tensor got = MatMul(a, b);
    Tensor expect({m, n});
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += a.at(i, p) * b.at(p, j);
        expect.at(i, j) = acc;
      }
    }
    EXPECT_TRUE(got.BitwiseEquals(expect))
        << "m=" << m << " n=" << n << " k=" << k;
  }
}

// ---- NaN propagation (regression for removed `aik == 0` skips) ----

TEST(MatMulNaNTest, ZeroTimesNaNReachesOutput) {
  Tensor a({2, 3});  // all-zero left operand: the old skip short-circuited it
  Tensor b({3, 2}, {1, 2, 3, 4, 5, 6});
  b[2] = std::nanf("");
  Tensor c = MatMul(a, b);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));
  EXPECT_TRUE(std::isnan(c.at(1, 0)));
  EXPECT_FALSE(std::isnan(c.at(0, 1)));
}

TEST(MatMulNaNTest, TransposeAZeroTimesNaNReachesOutput) {
  Tensor g({2, 3});  // zeros
  Tensor x({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  x[5] = std::nanf("");
  Tensor c = MatMulTransposeA(g, x);  // (3 x 4)
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_TRUE(std::isnan(c.at(j, 1))) << j;
    EXPECT_FALSE(std::isnan(c.at(j, 0))) << j;
  }
}

}  // namespace
}  // namespace fats
