// Tests for the determinism lint scanner (tools/fats_lint_lib.h): known-bad
// snippets must fire the exact rule IDs, suppression comments must downgrade
// them, and the path classifier must exempt src/rng/.

#include "fats_lint_lib.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace fats::lint {
namespace {

std::vector<std::string> ActiveRules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const Finding& f : findings) {
    if (!f.suppressed) rules.push_back(f.rule);
  }
  std::sort(rules.begin(), rules.end());
  return rules;
}

TEST(FatsLintClassify, RngDirIsExemptFromRngRules) {
  const FileClass rng = ClassifyPath("src/rng/philox.cc");
  EXPECT_FALSE(rng.rng_rules);
  EXPECT_FALSE(rng.ordered_rules);

  const FileClass core = ClassifyPath("src/core/fats_trainer.cc");
  EXPECT_TRUE(core.rng_rules);
  EXPECT_TRUE(core.ordered_rules);

  const FileClass fl = ClassifyPath("src/fl/server.cc");
  EXPECT_TRUE(fl.ordered_rules);
  const FileClass baselines = ClassifyPath("src/baselines/frs.cc");
  EXPECT_TRUE(baselines.ordered_rules);

  const FileClass nn = ClassifyPath("src/nn/linear.cc");
  EXPECT_TRUE(nn.rng_rules);
  EXPECT_FALSE(nn.ordered_rules);
  EXPECT_TRUE(nn.hot_rules);
  EXPECT_FALSE(core.hot_rules);
  EXPECT_TRUE(ClassifyPath("/home/u/repo/src/nn/lstm.cc").hot_rules);

  // Absolute paths classify the same way.
  EXPECT_FALSE(ClassifyPath("/home/u/repo/src/rng/sampling.cc").rng_rules);
  EXPECT_TRUE(ClassifyPath("/home/u/repo/src/core/x.cc").ordered_rules);
}

TEST(FatsLintClassify, LintableExtensions) {
  EXPECT_TRUE(ShouldLintFile("src/core/a.cc"));
  EXPECT_TRUE(ShouldLintFile("examples/quickstart.cpp"));
  EXPECT_TRUE(ShouldLintFile("src/nn/module.h"));
  EXPECT_FALSE(ShouldLintFile("CMakeLists.txt"));
  EXPECT_FALSE(ShouldLintFile("tools/ci.sh"));
}

TEST(FatsLintRng, RawStdRandFires) {
  const std::vector<Finding> f = ScanSource(
      "src/nn/init.cc", "int x = std::rand() % 7;\n");
  ASSERT_EQ(ActiveRules(f), std::vector<std::string>{kRuleBannedRand});
  EXPECT_EQ(f[0].line, 1);
  EXPECT_EQ(f[0].file, "src/nn/init.cc");
}

TEST(FatsLintRng, BareRandAndSrandFire) {
  const std::vector<Finding> f = ScanSource(
      "bench/bench_x.cc",
      "void f() {\n  srand(42);\n  int x = rand();\n}\n");
  const std::vector<std::string> expected = {kRuleBannedRand, kRuleBannedRand};
  EXPECT_EQ(ActiveRules(f), expected);
  EXPECT_EQ(f[0].line, 2);
  EXPECT_EQ(f[1].line, 3);
}

TEST(FatsLintRng, RandomDeviceFires) {
  const std::vector<Finding> f = ScanSource(
      "src/data/partition.cc", "std::random_device rd;\n");
  EXPECT_EQ(ActiveRules(f),
            std::vector<std::string>{kRuleBannedRandomDevice});
}

TEST(FatsLintRng, DefaultConstructedEngineFires) {
  EXPECT_EQ(ActiveRules(ScanSource("src/fl/client.cc",
                                   "std::mt19937 gen;\n")),
            std::vector<std::string>{kRuleDefaultEngine});
  EXPECT_EQ(ActiveRules(ScanSource("tools/foo.cc",
                                   "std::default_random_engine eng{};\n")),
            std::vector<std::string>{kRuleDefaultEngine});
  // A seeded engine is not the default-engine pattern (the include ban
  // covers it instead).
  EXPECT_TRUE(ActiveRules(ScanSource("src/fl/client.cc",
                                     "std::mt19937 gen(seed);\n"))
                  .empty());
}

TEST(FatsLintRng, RandomIncludeFiresOutsideRngOnly) {
  const char kSnippet[] = "#include <random>\n";
  EXPECT_EQ(ActiveRules(ScanSource("src/metrics/evaluation.cc", kSnippet)),
            std::vector<std::string>{kRuleRandomInclude});
  EXPECT_TRUE(ActiveRules(ScanSource("src/rng/rng_stream.h", kSnippet))
                  .empty());
}

TEST(FatsLintRng, TimeSeedFires) {
  const std::vector<Finding> f = ScanSource(
      "examples/demo.cpp", "engine.seed(std::time(nullptr));\n");
  EXPECT_EQ(ActiveRules(f), std::vector<std::string>{kRuleTimeSeed});
  // Wall-clock reads without a seeding context (e.g. the stopwatch) pass.
  EXPECT_TRUE(
      ActiveRules(ScanSource("src/util/stopwatch.cc",
                             "auto t = steady_clock::now();\n"))
          .empty());
}

TEST(FatsLintRng, LiteralsAndCommentsDoNotFire) {
  const std::vector<Finding> f = ScanSource(
      "src/util/logging.cc",
      "// std::rand() would be bad here\n"
      "const char* msg = \"never call std::rand()\";\n"
      "const char* re = R\"(\\bstd::random_device\\b)\";\n");
  EXPECT_TRUE(ActiveRules(f).empty());
  EXPECT_TRUE(f.empty());
}

TEST(FatsLintUnordered, RangeForOverMemberFires) {
  const char kSnippet[] =
      "#include <unordered_map>\n"
      "struct S {\n"
      "  std::unordered_map<int, float> weights_;\n"
      "  float Sum() const {\n"
      "    float s = 0;\n"
      "    for (const auto& [k, v] : weights_) s += v;\n"
      "    return s;\n"
      "  }\n"
      "};\n";
  const std::vector<Finding> f = ScanSource("src/core/foo.h", kSnippet);
  ASSERT_EQ(ActiveRules(f),
            std::vector<std::string>{kRuleUnorderedIteration});
  EXPECT_EQ(f[0].line, 6);

  // The same code outside the ordered-discipline trees is fine.
  EXPECT_TRUE(ActiveRules(ScanSource("src/data/foo.h", kSnippet)).empty());
}

TEST(FatsLintUnordered, ExplicitIteratorLoopFires) {
  const char kSnippet[] =
      "std::unordered_set<int> live_;\n"
      "void f() {\n"
      "  for (auto it = live_.begin(); it != live_.end(); ++it) {}\n"
      "}\n";
  const std::vector<Finding> f = ScanSource("src/baselines/frs.cc", kSnippet);
  ASSERT_EQ(ActiveRules(f),
            std::vector<std::string>{kRuleUnorderedIteration});
  EXPECT_EQ(f[0].line, 3);
}

TEST(FatsLintUnordered, SiblingHeaderDeclsAreVisible) {
  const char kHeader[] =
      "struct Store {\n"
      "  std::unordered_map<long,\n"
      "      std::vector<long>> records_;\n"
      "};\n";
  const char kSource[] =
      "void Store::Dump() {\n"
      "  for (const auto& [k, v] : records_) {}\n"
      "}\n";
  const std::vector<std::string_view> extra = {kHeader};
  const std::vector<Finding> f =
      ScanSource("src/fl/store.cc", kSource, ClassifyPath("src/fl/store.cc"),
                 extra);
  ASSERT_EQ(ActiveRules(f),
            std::vector<std::string>{kRuleUnorderedIteration});
  EXPECT_EQ(f[0].line, 2);
  // Without the header context the member is unknown.
  EXPECT_TRUE(ActiveRules(ScanSource("src/fl/store.cc", kSource)).empty());
}

TEST(FatsLintUnordered, LookupsDoNotFire) {
  const char kSnippet[] =
      "std::unordered_map<int, int> idx_;\n"
      "int f(int k) {\n"
      "  auto it = idx_.find(k);\n"
      "  return it == idx_.end() ? -1 : it->second;\n"
      "}\n";
  // find() and the .end() sentinel compare are order-independent and must
  // not fire; only traversal (range-for or begin()) counts as iteration.
  EXPECT_TRUE(ScanSource("src/core/idx.cc", kSnippet).empty());
}

TEST(FatsLintThread, RawThreadFiresOutsidePool) {
  EXPECT_EQ(ActiveRules(ScanSource("src/core/fats_trainer.cc",
                                   "std::thread t([] {});\n")),
            std::vector<std::string>{kRuleRawThread});
  EXPECT_EQ(ActiveRules(ScanSource("src/fl/server.cc",
                                   "auto f = std::async([] {});\n")),
            std::vector<std::string>{kRuleRawThread});
  EXPECT_EQ(ActiveRules(ScanSource("bench/bench_x.cc",
                                   "std::jthread t([] {});\n")),
            std::vector<std::string>{kRuleRawThread});
  // std::this_thread is not thread creation.
  EXPECT_TRUE(ActiveRules(ScanSource("src/util/stopwatch.cc",
                                     "std::this_thread::yield();\n"))
                  .empty());
}

TEST(FatsLintThread, PoolModuleIsExempt) {
  EXPECT_FALSE(ClassifyPath("src/util/thread_pool.h").thread_rules);
  EXPECT_FALSE(ClassifyPath("src/util/thread_pool.cc").thread_rules);
  EXPECT_FALSE(
      ClassifyPath("/home/u/repo/src/util/thread_pool.cc").thread_rules);
  EXPECT_TRUE(ClassifyPath("src/util/stopwatch.cc").thread_rules);
  EXPECT_TRUE(ActiveRules(ScanSource("src/util/thread_pool.h",
                                     "std::vector<std::thread> workers_;\n"))
                  .empty());
}

TEST(FatsLintThread, SuppressionDowngrades) {
  const std::vector<Finding> f = ScanSource(
      "src/core/a.cc",
      "std::thread t;  // fats-lint: allow(raw-thread)\n");
  ASSERT_EQ(static_cast<int>(f.size()), 1);
  EXPECT_TRUE(f[0].suppressed);
  EXPECT_EQ(ActiveCount(f), 0);
}

TEST(FatsLintRawIo, ClassifierScopesTheRule) {
  EXPECT_TRUE(ClassifyPath("src/core/fats_trainer.cc").io_rules);
  EXPECT_TRUE(ClassifyPath("src/fl/train_log.cc").io_rules);
  EXPECT_TRUE(ClassifyPath("src/io/checkpoint.cc").io_rules);
  EXPECT_TRUE(ClassifyPath("src/io/train_journal.cc").io_rules);
  // The journal module is the sanctioned raw-file writer.
  EXPECT_FALSE(ClassifyPath("src/io/journal.cc").io_rules);
  EXPECT_FALSE(ClassifyPath("src/io/journal.h").io_rules);
  // Outside the durable-state trees the rule does not apply.
  EXPECT_FALSE(ClassifyPath("src/util/csv_writer.cc").io_rules);
  EXPECT_FALSE(ClassifyPath("src/nn/linear.cc").io_rules);
  EXPECT_FALSE(ClassifyPath("bench/bench_micro_kernels.cc").io_rules);
}

TEST(FatsLintRawIo, OfstreamAndStdioWritesFire) {
  EXPECT_EQ(ActiveRules(ScanSource(
                "src/io/snapshot.cc",
                "void f() { std::ofstream out(p, std::ios::binary); }\n")),
            std::vector<std::string>{kRuleRawIo});
  EXPECT_EQ(ActiveRules(ScanSource("src/core/dump.cc",
                                   "FILE* f = fopen(path, qq);\n")),
            std::vector<std::string>{kRuleRawIo});
  EXPECT_EQ(ActiveRules(ScanSource("src/fl/spill.cc",
                                   "std::fwrite(buf, 1, n, f);\n")),
            std::vector<std::string>{kRuleRawIo});
}

TEST(FatsLintRawIo, JournalModuleDoesNotFire) {
  EXPECT_TRUE(
      ActiveRules(ScanSource("src/io/journal.cc",
                             "std::FILE* f = std::fopen(p, qq);\n"
                             "std::fwrite(buf, 1, n, f);\n"))
          .empty());
}

TEST(FatsLintRawIo, OutsideDurableTreesDoesNotFire) {
  EXPECT_TRUE(ActiveRules(ScanSource("src/util/csv_writer.cc",
                                     "std::ofstream file_(path);\n"))
                  .empty());
}

TEST(FatsLintRawIo, LiteralsAndCommentsDoNotFire) {
  EXPECT_TRUE(
      ActiveRules(ScanSource("src/io/doc.cc",
                             "// never call fopen here\n"
                             "const char* s = \"std::ofstream out;\";\n"))
          .empty());
}

TEST(FatsLintRawIo, SuppressionDowngrades) {
  const std::vector<Finding> findings = ScanSource(
      "src/io/probe.cc",
      "// Read-only probe.  fats-lint: allow(raw-io)\n"
      "std::FILE* f = std::fopen(p, qq);\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, kRuleRawIo);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_EQ(ActiveCount(findings), 0);
}

TEST(FatsLintHotAlloc, TensorTemporaryInForwardFires) {
  const char kSnippet[] =
      "const Tensor& Linear::Forward(const Tensor& input, Workspace* ws) {\n"
      "  Tensor out({input.dim(0), out_features_});\n"
      "  return out;\n"
      "}\n";
  const std::vector<Finding> f = ScanSource("src/nn/linear.cc", kSnippet);
  ASSERT_EQ(ActiveRules(f), std::vector<std::string>{kRuleHotAlloc});
  EXPECT_EQ(f[0].line, 2);
  EXPECT_NE(f[0].message.find("'out'"), std::string::npos);

  // The identical body outside src/nn/ is not a hot path.
  EXPECT_TRUE(ActiveRules(ScanSource("src/core/foo.cc", kSnippet)).empty());
}

TEST(FatsLintHotAlloc, WorkspaceBindingsDoNotFire) {
  const char kSnippet[] =
      "const Tensor& Linear::Forward(const Tensor& input, Workspace* ws) {\n"
      "  Tensor& out = ws->Peek(this, kOut);\n"
      "  const Tensor& col = ws->Peek(this, kCol);\n"
      "  const Tensor* cached = &input;\n"
      "  return out;\n"
      "}\n";
  EXPECT_TRUE(ActiveRules(ScanSource("src/nn/linear.cc", kSnippet)).empty());
}

TEST(FatsLintHotAlloc, TripleLoopMatmulFires) {
  const char kSnippet[] =
      "const Tensor& Foo::Backward(const Tensor& g, Workspace* ws) {\n"
      "  for (int64_t i = 0; i < m; ++i) {\n"
      "    for (int64_t kk = 0; kk < k; ++kk) {\n"
      "      const float aik = a[i * k + kk];\n"
      "      for (int64_t j = 0; j < n; ++j) c[i * n + j] += aik * b[kk * n + j];\n"
      "    }\n"
      "  }\n"
      "  return ws->Peek(this, 0);\n"
      "}\n";
  const std::vector<Finding> f = ScanSource("src/nn/foo.cc", kSnippet);
  ASSERT_EQ(ActiveRules(f), std::vector<std::string>{kRuleHotAlloc});
  EXPECT_EQ(f[0].line, 5);
  EXPECT_NE(f[0].message.find("triple-nested"), std::string::npos);
}

TEST(FatsLintHotAlloc, NonMacTripleLoopDoesNotFire) {
  // Elementwise work at depth 3 (e.g. the LSTM gate loop, conv bias add) is
  // legitimate: only += with a multiply on one statement looks like matmul.
  const char kSnippet[] =
      "const Tensor& Foo::Forward(const Tensor& x, Workspace* ws) {\n"
      "  for (int64_t t = 0; t < seq; ++t) {\n"
      "    for (int64_t n = 0; n < batch; ++n) {\n"
      "      for (int64_t j = 0; j < h; ++j) dst[j] += src[j];\n"
      "    }\n"
      "  }\n"
      "  return ws->Peek(this, 0);\n"
      "}\n";
  EXPECT_TRUE(ActiveRules(ScanSource("src/nn/foo.cc", kSnippet)).empty());
}

TEST(FatsLintHotAlloc, DirectReferencePathsAreExempt) {
  // ForwardDirect/BackwardDirect are the retained direct-conv reference
  // implementations; Tensor returns and MAC loops are their whole point.
  const char kSnippet[] =
      "Tensor Conv2d::ForwardDirect(const Tensor& input) const {\n"
      "  Tensor out({input.dim(0), out_features_});\n"
      "  for (int64_t i = 0; i < m; ++i)\n"
      "    for (int64_t kk = 0; kk < k; ++kk)\n"
      "      for (int64_t j = 0; j < n; ++j) c[i * n + j] += a[i] * b[j];\n"
      "  return out;\n"
      "}\n";
  EXPECT_TRUE(ActiveRules(ScanSource("src/nn/conv2d.cc", kSnippet)).empty());
}

TEST(FatsLintHotAlloc, CallsAndDeclarationsDoNotFire) {
  const char kSnippet[] =
      "const Tensor& Forward(const Tensor& input, Workspace* ws) override;\n"
      "void Step() {\n"
      "  Tensor y = layer.Forward(x, &ws);\n"
      "  const Tensor& gx = layer.Backward(g, &ws);\n"
      "}\n";
  // The Tensor temporary lives in Step(), not in a Forward/Backward body;
  // the Forward declaration has no body and the calls are not definitions.
  EXPECT_TRUE(ActiveRules(ScanSource("src/nn/foo.h", kSnippet)).empty());
}

TEST(FatsLintHotAlloc, SuppressionDowngrades) {
  const char kSnippet[] =
      "const Tensor& Foo::Forward(const Tensor& x, Workspace* ws) {\n"
      "  // fats-lint: allow(hot-alloc)\n"
      "  Tensor scratch({4, 4});\n"
      "  return ws->Peek(this, 0);\n"
      "}\n";
  const std::vector<Finding> f = ScanSource("src/nn/foo.cc", kSnippet);
  ASSERT_EQ(static_cast<int>(f.size()), 1);
  EXPECT_TRUE(f[0].suppressed);
  EXPECT_EQ(ActiveCount(f), 0);
}

TEST(FatsLintSuppression, SameLineAndPreviousLine) {
  const std::vector<Finding> same_line = ScanSource(
      "src/core/a.cc",
      "int x = std::rand();  // fats-lint: allow(banned-rand)\n");
  ASSERT_EQ(static_cast<int>(same_line.size()), 1);
  EXPECT_TRUE(same_line[0].suppressed);
  EXPECT_EQ(ActiveCount(same_line), 0);

  const std::vector<Finding> prev_line = ScanSource(
      "src/core/a.cc",
      "// fats-lint: allow(banned-rand)\n"
      "int x = std::rand();\n");
  ASSERT_EQ(static_cast<int>(prev_line.size()), 1);
  EXPECT_TRUE(prev_line[0].suppressed);
}

TEST(FatsLintSuppression, WrongRuleDoesNotSuppress) {
  const std::vector<Finding> f = ScanSource(
      "src/core/a.cc",
      "int x = std::rand();  // fats-lint: allow(time-seed)\n");
  ASSERT_EQ(static_cast<int>(f.size()), 1);
  EXPECT_FALSE(f[0].suppressed);
  EXPECT_EQ(ActiveCount(f), 1);
}

TEST(FatsLintSuppression, ListAndAll) {
  const std::vector<Finding> list = ScanSource(
      "src/core/a.cc",
      "std::random_device rd;  // fats-lint: allow(banned-random-device, "
      "banned-rand)\n");
  ASSERT_EQ(static_cast<int>(list.size()), 1);
  EXPECT_TRUE(list[0].suppressed);

  const std::vector<Finding> all = ScanSource(
      "src/core/a.cc", "int x = std::rand();  // fats-lint: allow(all)\n");
  ASSERT_EQ(static_cast<int>(all.size()), 1);
  EXPECT_TRUE(all[0].suppressed);
}

TEST(FatsLintReport, JsonShape) {
  const std::vector<Finding> f = ScanSource(
      "src/core/a.cc",
      "int x = std::rand();\n"
      "int y = std::rand();  // fats-lint: allow(banned-rand)\n");
  ASSERT_EQ(static_cast<int>(f.size()), 2);
  const std::string json = ToJson(f);
  EXPECT_NE(json.find("\"rule\": \"banned-rand\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": true"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": false"), std::string::npos);
  EXPECT_EQ(ToJson({}), "[]\n");
}

TEST(FatsLintReport, AllRulesListed) {
  const std::vector<std::string> rules = AllRules();
  EXPECT_EQ(static_cast<int>(rules.size()), 9);
  EXPECT_NE(std::find(rules.begin(), rules.end(), kRuleUnorderedIteration),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), kRuleRawThread),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), kRuleRawIo), rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), kRuleHotAlloc),
            rules.end());
}

// --- SuppressionMap edge cases (the comment grammar, not the rules) ---

TEST(FatsLintSuppressionMap, MultiRuleListOnOneLine) {
  const SuppressionMap map = SuppressionMap::Parse(
      "int x;  // fats-lint: allow(banned-rand,raw-thread)\n");
  EXPECT_TRUE(map.Allows(1, "banned-rand"));
  EXPECT_TRUE(map.Allows(1, "raw-thread"));
  EXPECT_FALSE(map.Allows(1, "raw-io"));
  // The directive also covers the next line (annotation-above form).
  EXPECT_TRUE(map.Allows(2, "banned-rand"));
  EXPECT_FALSE(map.Allows(3, "banned-rand"));
}

TEST(FatsLintSuppressionMap, TrailingCommentAfterDirective) {
  const SuppressionMap map = SuppressionMap::Parse(
      "f();  // fats-lint: allow(raw-io) -- read-only probe, see DESIGN 7.4\n");
  EXPECT_TRUE(map.Allows(1, "raw-io"));
  // Prose after the close paren must not leak extra rules.
  EXPECT_FALSE(map.Allows(1, "probe"));
}

TEST(FatsLintSuppressionMap, BlockCommentForm) {
  const SuppressionMap map = SuppressionMap::Parse(
      "g(); /* fats-lint: allow(hot-alloc) */ h();\n");
  EXPECT_TRUE(map.Allows(1, "hot-alloc"));
}

TEST(FatsLintSuppressionMap, WhitespaceBetweenAllowAndParen) {
  const SuppressionMap map = SuppressionMap::Parse(
      "x();  // fats-lint: allow ( banned-rand , time-seed )\n");
  EXPECT_TRUE(map.Allows(1, "banned-rand"));
  EXPECT_TRUE(map.Allows(1, "time-seed"));
}

TEST(FatsLintSuppressionMap, MultipleDirectivesOnOneLineMerge) {
  const SuppressionMap map = SuppressionMap::Parse(
      "y();  // fats-lint: allow(raw-io) fats-lint: allow(raw-thread)\n");
  EXPECT_TRUE(map.Allows(1, "raw-io"));
  EXPECT_TRUE(map.Allows(1, "raw-thread"));
}

TEST(FatsLintSuppressionMap, DirectiveTwoLinesAboveDoesNotApply) {
  const std::vector<Finding> f = ScanSource(
      "src/core/a.cc",
      "// fats-lint: allow(banned-rand)\n"
      "int unrelated;\n"
      "int x = std::rand();\n");
  ASSERT_EQ(static_cast<int>(f.size()), 1);
  EXPECT_FALSE(f[0].suppressed);
}

TEST(FatsLintSuppressionMap, WrongLineDoesNotSuppress) {
  // Directive BELOW the finding: only same-line and line-above count.
  const std::vector<Finding> f = ScanSource(
      "src/core/a.cc",
      "int x = std::rand();\n"
      "// fats-lint: allow(banned-rand)\n");
  ASSERT_EQ(static_cast<int>(f.size()), 1);
  EXPECT_FALSE(f[0].suppressed);
}

TEST(FatsLintSuppressionMap, MalformedDirectiveIsIgnored) {
  const SuppressionMap map = SuppressionMap::Parse(
      "a();  // fats-lint: allow banned-rand\n"   // no parens
      "b();  // fats-lint: deny(banned-rand)\n"   // unknown verb
      "c();  // fats-lint: allow()\n");           // empty list
  EXPECT_FALSE(map.Allows(1, "banned-rand"));
  EXPECT_FALSE(map.Allows(2, "banned-rand"));
  EXPECT_FALSE(map.Allows(3, "banned-rand"));
  EXPECT_TRUE(map.empty());
}

TEST(FatsLintStrip, PreservesOffsetsAndNewlines) {
  const std::string stripped = StripCommentsAndStrings(
      "int a; // comment\n\"str\\\"ing\" 'c'\n/* multi\nline */int b;\n");
  EXPECT_EQ(stripped.size(),
            std::string("int a; // comment\n\"str\\\"ing\" 'c'\n/* multi\n"
                        "line */int b;\n")
                .size());
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 4);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
  EXPECT_EQ(stripped.find("comment"), std::string::npos);
  EXPECT_EQ(stripped.find("str"), std::string::npos);
}

TEST(FatsLintStrip, CollectsMultiLineDeclarations) {
  const std::vector<std::string> names = CollectUnorderedNames(
      "std::unordered_map<std::pair<long, long>, std::vector<long>,\n"
      "                   PairHash>\n"
      "    minibatches_;\n"
      "std::unordered_set<int> live_;\n"
      "using Alias = std::unordered_map<int, int>;\n"
      "std::unordered_map<int, int> Lookup();\n");
  const std::vector<std::string> expected = {"live_", "minibatches_"};
  EXPECT_EQ(names, expected);
}

}  // namespace
}  // namespace fats::lint
