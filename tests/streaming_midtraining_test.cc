// Streaming requests interleaved with ongoing training (Appendix A.5
// semantics at full fidelity): train a few rounds, serve a request, train
// more, serve another — state must stay consistent throughout.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/unlearning_executor.h"
#include "test_workloads.h"

namespace fats {
namespace {

struct Trained {
  FederatedDataset data;
  FatsConfig config;
  std::unique_ptr<FatsTrainer> trainer;
};

Trained MakeEnv(int64_t clients = 12, int64_t n = 10, int64_t rounds = 6,
                int64_t e = 3) {
  Trained t;
  t.data = TinyImageData(clients, n);
  t.config = TinyFatsConfig(clients, n, rounds, e);
  t.trainer =
      std::make_unique<FatsTrainer>(TinyModelSpec(), t.config, &t.data);
  return t;
}

void ExpectConsistentState(const Trained& t) {
  // Every recorded selection references an active client, every recorded
  // mini-batch only active samples, for all executed rounds.
  const int64_t executed_rounds =
      (t.trainer->trained_through() + t.config.local_iters_e - 1) /
      t.config.local_iters_e;
  for (int64_t r = 1; r <= executed_rounds; ++r) {
    const std::vector<int64_t>* selection =
        t.trainer->store().GetClientSelection(r);
    ASSERT_NE(selection, nullptr) << "round " << r;
    for (int64_t k : *selection) {
      EXPECT_TRUE(t.data.client_active(k)) << "round " << r;
      for (int64_t iter = (r - 1) * t.config.local_iters_e + 1;
           iter <= std::min(r * t.config.local_iters_e,
                            t.trainer->trained_through());
           ++iter) {
        const std::vector<int64_t>* batch =
            t.trainer->store().GetMinibatch(iter, k);
        if (batch == nullptr) continue;
        for (int64_t i : *batch) {
          EXPECT_TRUE(t.data.sample_active(k, i))
              << "(" << k << "," << i << ") at iter " << iter;
        }
      }
    }
  }
}

TEST(StreamingMidTrainingTest, InterleavedSampleAndClientRequests) {
  Trained t = MakeEnv();
  UnlearningExecutor executor(t.trainer.get());

  t.trainer->TrainUntil(6);  // rounds 1-2
  {
    StreamId id;
    id.purpose = RngPurpose::kGeneric;
    RngStream rng(1, id);
    UnlearningRequest request;
    request.kind = UnlearningRequest::Kind::kSample;
    request.sample = PickRandomActiveSamples(t.data, 1, &rng)[0];
    request.request_iter = t.trainer->trained_through();
    ASSERT_TRUE(executor.ExecuteStream({request}).ok());
  }
  ExpectConsistentState(t);

  t.trainer->TrainUntil(12);  // rounds 3-4
  {
    StreamId id;
    id.purpose = RngPurpose::kGeneric;
    id.iteration = 2;
    RngStream rng(1, id);
    UnlearningRequest request;
    request.kind = UnlearningRequest::Kind::kClient;
    request.client = PickRandomActiveClients(t.data, 1, &rng)[0];
    request.request_iter = t.trainer->trained_through();
    ASSERT_TRUE(executor.ExecuteStream({request}).ok());
  }
  ExpectConsistentState(t);

  t.trainer->TrainUntil(t.config.total_iters_t());
  ExpectConsistentState(t);
  EXPECT_EQ(t.trainer->trained_through(), t.config.total_iters_t());
  const double accuracy = t.trainer->EvaluateTestAccuracy();
  EXPECT_GE(accuracy, 0.0);
  EXPECT_LE(accuracy, 1.0);
}

TEST(StreamingMidTrainingTest, ManySmallInterleavings) {
  Trained t = MakeEnv(16, 8, 8, 2);
  UnlearningExecutor executor(t.trainer.get());
  StreamId id;
  id.purpose = RngPurpose::kGeneric;
  RngStream rng(9, id);
  for (int64_t r = 1; r <= 8; ++r) {
    t.trainer->TrainUntil(r * 2);
    UnlearningRequest request;
    if (r % 2 == 0 && t.data.num_active_clients() > 4) {
      request.kind = UnlearningRequest::Kind::kClient;
      request.client = PickRandomActiveClients(t.data, 1, &rng)[0];
    } else {
      request.kind = UnlearningRequest::Kind::kSample;
      request.sample = PickRandomActiveSamples(t.data, 1, &rng)[0];
    }
    request.request_iter = t.trainer->trained_through();
    ASSERT_TRUE(executor.ExecuteStream({request}).ok()) << "round " << r;
    ExpectConsistentState(t);
  }
  EXPECT_EQ(t.trainer->trained_through(), t.config.total_iters_t());
}

TEST(StreamingMidTrainingTest, DeterministicInterleavedPipeline) {
  auto run = []() {
    Trained t = MakeEnv();
    UnlearningExecutor executor(t.trainer.get());
    t.trainer->TrainUntil(6);
    UnlearningRequest request;
    request.kind = UnlearningRequest::Kind::kSample;
    request.sample = {2, 3};
    request.request_iter = 6;
    FATS_CHECK(executor.ExecuteStream({request}).ok());
    t.trainer->TrainUntil(t.config.total_iters_t());
    return t.trainer->global_params();
  };
  EXPECT_TRUE(run().BitwiseEquals(run()));
}

}  // namespace
}  // namespace fats
