// Edge-case coverage across the trainer / unlearner stack.

#include <gtest/gtest.h>

#include "core/client_unlearner.h"
#include "core/sample_unlearner.h"
#include "test_workloads.h"

namespace fats {
namespace {

TEST(EdgeCaseTest, SingleIterationRounds) {
  // E = 1: every iteration is a full round.
  FederatedDataset data = TinyImageData(6, 8);
  FatsConfig config = TinyFatsConfig(6, 8, /*rounds=*/6, /*e=*/1, 0.5, 0.5);
  ASSERT_TRUE(config.Validate().ok());
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  trainer.Train();
  EXPECT_EQ(trainer.log().records().size(), 6u);
}

TEST(EdgeCaseTest, SingleRoundTraining) {
  FederatedDataset data = TinyImageData(6, 8);
  FatsConfig config = TinyFatsConfig(6, 8, /*rounds=*/1, /*e=*/4, 0.5, 0.5);
  ASSERT_TRUE(config.Validate().ok());
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  trainer.Train();
  EXPECT_EQ(trainer.log().records().size(), 1u);
  EXPECT_NE(trainer.store().GetGlobalModel(1), nullptr);
}

TEST(EdgeCaseTest, FullBatchTraining) {
  // rho_s chosen so b = N (full local batches; no batch randomness).
  FederatedDataset data = TinyImageData(4, 6);
  FatsConfig config = TinyFatsConfig(4, 6, 3, 2, /*rho_s=*/10.0,
                                     /*rho_c=*/1.0);
  EXPECT_EQ(config.DeriveB(), 6);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  trainer.Train();
  // Every sample of every selected client participates -> unlearning any
  // sample of a participant triggers re-computation.
  const std::vector<int64_t>* selection =
      trainer.store().GetClientSelection(1);
  ASSERT_NE(selection, nullptr);
  SampleRef target{(*selection)[0], 0};
  EXPECT_EQ(trainer.store().EarliestSampleUse(target), 1);
}

TEST(EdgeCaseTest, UnlearnShrinksBelowBatchSize) {
  // After deletions a client can hold fewer than b samples; FATS clamps the
  // batch to the active count instead of failing.
  FederatedDataset data = TinyImageData(4, 4);
  FatsConfig config = TinyFatsConfig(4, 4, 3, 2, /*rho_s=*/6.0,
                                     /*rho_c=*/1.0);
  EXPECT_EQ(config.DeriveB(), 4);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  trainer.Train();
  SampleUnlearner unlearner(&trainer);
  // Delete three of client 0's four samples, one at a time.
  for (int64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(unlearner.Unlearn({0, i}, config.total_iters_t()).ok())
        << "deletion " << i;
  }
  EXPECT_EQ(data.num_active_samples(0), 1);
  // Recorded batches for client 0 reference only active samples.
  for (int64_t t = 1; t <= config.total_iters_t(); ++t) {
    const std::vector<int64_t>* batch = trainer.store().GetMinibatch(t, 0);
    if (batch == nullptr) continue;
    for (int64_t index : *batch) {
      EXPECT_TRUE(data.sample_active(0, index));
    }
  }
}

TEST(EdgeCaseTest, UnlearnClientsUntilKExceedsActive) {
  // With-replacement client sampling keeps working when the active
  // federation shrinks below K.
  FederatedDataset data = TinyImageData(4, 8);
  FatsConfig config = TinyFatsConfig(4, 8, 3, 2, 0.5, /*rho_c=*/2.0);
  const int64_t k = config.DeriveK();
  ASSERT_GE(k, 2);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  trainer.Train();
  ClientUnlearner unlearner(&trainer);
  ASSERT_TRUE(unlearner.Unlearn(0, config.total_iters_t()).ok());
  ASSERT_TRUE(unlearner.Unlearn(1, config.total_iters_t()).ok());
  ASSERT_TRUE(unlearner.Unlearn(2, config.total_iters_t()).ok());
  EXPECT_EQ(data.num_active_clients(), 1);
  // The recomputed history only references the surviving client.
  for (int64_t r = 1; r <= config.rounds_r; ++r) {
    const std::vector<int64_t>* selection =
        trainer.store().GetClientSelection(r);
    ASSERT_NE(selection, nullptr);
    for (int64_t c : *selection) EXPECT_EQ(c, 3);
  }
}

TEST(EdgeCaseTest, SampleThenClientUnlearningCompose) {
  FederatedDataset data = TinyImageData(8, 8);
  FatsConfig config = TinyFatsConfig(8, 8, 4, 2);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  trainer.Train();
  SampleUnlearner sample_unlearner(&trainer);
  ClientUnlearner client_unlearner(&trainer);
  ASSERT_TRUE(sample_unlearner.Unlearn({1, 0}, config.total_iters_t()).ok());
  ASSERT_TRUE(client_unlearner.Unlearn(2, config.total_iters_t()).ok());
  ASSERT_TRUE(sample_unlearner.Unlearn({3, 4}, config.total_iters_t()).ok());
  EXPECT_FALSE(data.sample_active(1, 0));
  EXPECT_FALSE(data.client_active(2));
  EXPECT_FALSE(data.sample_active(3, 4));
  // State is internally consistent: no recorded batch references deleted
  // data, no selection references the removed client.
  for (int64_t r = 1; r <= config.rounds_r; ++r) {
    const std::vector<int64_t>* selection =
        trainer.store().GetClientSelection(r);
    ASSERT_NE(selection, nullptr);
    for (int64_t c : *selection) {
      EXPECT_NE(c, 2);
      for (int64_t t = (r - 1) * 2 + 1; t <= r * 2; ++t) {
        const std::vector<int64_t>* batch =
            trainer.store().GetMinibatch(t, c);
        if (batch == nullptr) continue;
        for (int64_t i : *batch) EXPECT_TRUE(data.sample_active(c, i));
      }
    }
  }
}

TEST(EdgeCaseTest, UnlearningSampleOfRemovedClientFails) {
  FederatedDataset data = TinyImageData(6, 8);
  FatsConfig config = TinyFatsConfig(6, 8, 3, 2);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  trainer.Train();
  ClientUnlearner client_unlearner(&trainer);
  ASSERT_TRUE(client_unlearner.Unlearn(1, config.total_iters_t()).ok());
  SampleUnlearner sample_unlearner(&trainer);
  EXPECT_FALSE(sample_unlearner.Unlearn({1, 0}, config.total_iters_t()).ok());
}

TEST(EdgeCaseTest, TinyFederationOfTwoClients) {
  FederatedDataset data = TinyImageData(2, 6);
  FatsConfig config = TinyFatsConfig(2, 6, 3, 2, 0.5, 1.0);
  ASSERT_TRUE(config.Validate().ok());
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  trainer.Train();
  ClientUnlearner unlearner(&trainer);
  ASSERT_TRUE(unlearner.Unlearn(0, config.total_iters_t()).ok());
  EXPECT_EQ(data.num_active_clients(), 1);
  EXPECT_GE(trainer.EvaluateTestAccuracy(), 0.0);
}

TEST(EdgeCaseTest, RequestAtIterationOne) {
  FederatedDataset data = TinyImageData(6, 8);
  FatsConfig config = TinyFatsConfig(6, 8, 3, 2);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  trainer.Train();
  SampleUnlearner unlearner(&trainer);
  // request_iter = 1 is the smallest legal request time.
  EXPECT_TRUE(unlearner.Unlearn({0, 0}, 1).ok());
}

}  // namespace
}  // namespace fats
