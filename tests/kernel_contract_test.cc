// Deterministic-kernel contract tests (tensor/gemm.h, DESIGN.md §7.2).
//
// The blocked kernels are free to tile, pack, and vectorise however they
// like, but every output element must be the bitwise result of the canonical
// chain: acc starts at C[i][j] (accumulate) or 0, and the products are added
// in ascending-k order, each product and each add rounded individually.
// ReferenceSgemm{NN,NT,TN} spell that chain out as naive triple loops; these
// tests pin the blocked kernels to them bit-for-bit across shapes that cover
// all tile-edge cases (sub-tile, exact-tile, prime tails, multi-panel), both
// accumulate modes, strided destinations, and non-finite inputs.

#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "rng/rng_stream.h"
#include "util/thread_pool.h"

namespace fats {
namespace {

std::vector<float> RandomVec(int64_t n, RngStream* rng) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) {
    x = static_cast<float>(rng->NextDouble() * 2.0 - 1.0);
  }
  return v;
}

bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// Shapes chosen to hit: tiny (single partial micro-tile), exact micro-tile
// multiples (6, 16), one past a register-block boundary, primes (no
// alignment anywhere), and a k large enough to span multiple kKc panels
// would be slow here — k=257 crosses the 256-wide k-block boundary instead.
struct Shape {
  int64_t m, n, k;
};

const Shape kShapes[] = {
    {1, 1, 1},   {2, 3, 4},    {6, 16, 8},  {7, 17, 5},   {12, 32, 16},
    {13, 37, 7}, {5, 97, 11},  {37, 5, 64}, {19, 23, 29}, {6, 16, 257},
    {97, 3, 2},  {31, 64, 33},
    // Above the small-GEMM threshold with partial row/column edge tiles, so
    // the packed/blocked path keeps full edge coverage on every host.
    {40, 50, 30}, {70, 40, 20}, {64, 23, 48},
};

TEST(KernelContract, SgemmNNBitwiseMatchesReference) {
  RngStream rng(uint64_t{101});
  for (const Shape& s : kShapes) {
    for (bool accumulate : {false, true}) {
      const std::vector<float> a = RandomVec(s.m * s.k, &rng);
      const std::vector<float> b = RandomVec(s.k * s.n, &rng);
      std::vector<float> c_ref = RandomVec(s.m * s.n, &rng);
      std::vector<float> c_blk = c_ref;
      gemm::ReferenceSgemmNN(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                             c_ref.data(), s.n, accumulate);
      gemm::SgemmNN(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, c_blk.data(),
                    s.n, accumulate);
      EXPECT_TRUE(BitwiseEqual(c_ref, c_blk))
          << "m=" << s.m << " n=" << s.n << " k=" << s.k
          << " accumulate=" << accumulate;
    }
  }
}

TEST(KernelContract, SgemmNTBitwiseMatchesReference) {
  RngStream rng(uint64_t{102});
  for (const Shape& s : kShapes) {
    for (bool accumulate : {false, true}) {
      const std::vector<float> a = RandomVec(s.m * s.k, &rng);
      const std::vector<float> b = RandomVec(s.n * s.k, &rng);  // (n x k)
      std::vector<float> c_ref = RandomVec(s.m * s.n, &rng);
      std::vector<float> c_blk = c_ref;
      gemm::ReferenceSgemmNT(s.m, s.n, s.k, a.data(), s.k, b.data(), s.k,
                             c_ref.data(), s.n, accumulate);
      gemm::SgemmNT(s.m, s.n, s.k, a.data(), s.k, b.data(), s.k, c_blk.data(),
                    s.n, accumulate);
      EXPECT_TRUE(BitwiseEqual(c_ref, c_blk))
          << "m=" << s.m << " n=" << s.n << " k=" << s.k
          << " accumulate=" << accumulate;
    }
  }
}

TEST(KernelContract, SgemmTNBitwiseMatchesReference) {
  RngStream rng(uint64_t{103});
  for (const Shape& s : kShapes) {
    for (bool accumulate : {false, true}) {
      const std::vector<float> a = RandomVec(s.k * s.m, &rng);  // (k x m)
      const std::vector<float> b = RandomVec(s.k * s.n, &rng);
      std::vector<float> c_ref = RandomVec(s.m * s.n, &rng);
      std::vector<float> c_blk = c_ref;
      gemm::ReferenceSgemmTN(s.m, s.n, s.k, a.data(), s.m, b.data(), s.n,
                             c_ref.data(), s.n, accumulate);
      gemm::SgemmTN(s.m, s.n, s.k, a.data(), s.m, b.data(), s.n, c_blk.data(),
                    s.n, accumulate);
      EXPECT_TRUE(BitwiseEqual(c_ref, c_blk))
          << "m=" << s.m << " n=" << s.n << " k=" << s.k
          << " accumulate=" << accumulate;
    }
  }
}

// Strided destination: the LSTM backward writes each step's dx directly into
// the packed (batch, seq*input_dim) gradient with ldc = seq*input_dim.
TEST(KernelContract, StridedDestinationMatchesReference) {
  RngStream rng(uint64_t{104});
  const int64_t m = 9, n = 13, k = 21, ldc = 40;
  const std::vector<float> a = RandomVec(m * k, &rng);
  const std::vector<float> b = RandomVec(k * n, &rng);
  std::vector<float> c_ref = RandomVec(m * ldc, &rng);
  std::vector<float> c_blk = c_ref;
  gemm::ReferenceSgemmNN(m, n, k, a.data(), k, b.data(), n, c_ref.data(), ldc,
                         /*accumulate=*/true);
  gemm::SgemmNN(m, n, k, a.data(), k, b.data(), n, c_blk.data(), ldc,
                /*accumulate=*/true);
  EXPECT_TRUE(BitwiseEqual(c_ref, c_blk));
  // Columns n..ldc of every row are untouched by both kernels by
  // construction of the reference; bitwise equality above already covers it.
}

// Regression for the removed data-dependent skip (`if (aik == 0) continue;`):
// a zero in A multiplied by a NaN/Inf in B must produce NaN, exactly as the
// reference chain does.  The old skip silently blocked NaN/Inf propagation,
// hiding divergence bugs that exactness tests rely on to surface.
TEST(KernelContract, ZeroTimesNaNPropagates) {
  const int64_t m = 3, n = 5, k = 4;
  std::vector<float> a(m * k, 0.0f);  // all zeros: the old skip always fired
  std::vector<float> b(k * n, 1.0f);
  b[7] = std::nanf("");
  b[11] = INFINITY;
  std::vector<float> c_ref(m * n, 0.0f);
  std::vector<float> c_blk(m * n, 0.0f);
  gemm::ReferenceSgemmNN(m, n, k, a.data(), k, b.data(), n, c_ref.data(), n,
                         false);
  gemm::SgemmNN(m, n, k, a.data(), k, b.data(), n, c_blk.data(), n, false);
  EXPECT_TRUE(BitwiseEqual(c_ref, c_blk));
  // 0 * NaN = NaN and 0 * Inf = NaN must reach the output.
  bool saw_nan = false;
  for (float x : c_blk) saw_nan |= std::isnan(x);
  EXPECT_TRUE(saw_nan) << "NaN/Inf in B was not propagated through a zero A";
}

TEST(KernelContract, NaNInAPropagates) {
  RngStream rng(uint64_t{105});
  const int64_t m = 7, n = 18, k = 12;
  std::vector<float> a = RandomVec(m * k, &rng);
  a[5] = std::nanf("");
  const std::vector<float> b = RandomVec(k * n, &rng);
  std::vector<float> c_ref(m * n, 0.0f);
  std::vector<float> c_blk(m * n, 0.0f);
  gemm::ReferenceSgemmNN(m, n, k, a.data(), k, b.data(), n, c_ref.data(), n,
                         false);
  gemm::SgemmNN(m, n, k, a.data(), k, b.data(), n, c_blk.data(), n, false);
  EXPECT_TRUE(BitwiseEqual(c_ref, c_blk));
  bool saw_nan = false;
  for (float x : c_blk) saw_nan |= std::isnan(x);
  EXPECT_TRUE(saw_nan);
}

// k == 0 zeroes (or preserves, when accumulating) the destination.
TEST(KernelContract, EmptyKDimension) {
  std::vector<float> a;
  std::vector<float> b;
  std::vector<float> c = {1.0f, 2.0f, 3.0f, 4.0f};
  gemm::SgemmNN(2, 2, 0, a.data(), 0, b.data(), 2, c.data(), 2,
                /*accumulate=*/true);
  EXPECT_EQ(c[0], 1.0f);
  EXPECT_EQ(c[3], 4.0f);
  gemm::SgemmNN(2, 2, 0, a.data(), 0, b.data(), 2, c.data(), 2,
                /*accumulate=*/false);
  for (float x : c) EXPECT_EQ(x, 0.0f);
}

// --- Multi-threaded execution (DESIGN.md §7.6) -----------------------------
//
// With a ParallelScope active, the drivers split the m dimension into fixed
// row bands and run the bands as pool tasks. The contract is bitwise
// identity to the serial kernels at every thread count: band boundaries
// never touch any per-element ascending-k chain, and each element is owned
// by exactly one task. The parallel path only engages above a work
// threshold, so the shape list below includes shapes on both sides of it —
// below-threshold shapes exercise the (bit-identical) serial fallback under
// an active scope.

const Shape kParallelShapes[] = {
    // Under the parallel work floor: scope active, serial fallback.
    {6, 16, 8}, {13, 37, 7}, {64, 23, 48},
    // Over the floor: genuine multi-band dispatch, including band counts
    // that don't divide evenly and rectangular extremes.
    {128, 64, 48}, {97, 128, 33}, {256, 16, 64}, {300, 40, 25},
    {256, 256, 17}, {48, 96, 130},
};

class ParallelKernelContract : public ::testing::TestWithParam<int64_t> {};

TEST_P(ParallelKernelContract, AllVariantsBitwiseMatchSerial) {
  const int64_t threads = GetParam();
  ThreadPool pool(threads);
  RngStream rng(uint64_t{200} + static_cast<uint64_t>(threads));
  for (const Shape& s : kParallelShapes) {
    for (bool accumulate : {false, true}) {
      const std::vector<float> a = RandomVec(s.m * s.k, &rng);
      const std::vector<float> b = RandomVec(s.k * s.n, &rng);
      const std::vector<float> bt = RandomVec(s.n * s.k, &rng);  // (n x k)
      const std::vector<float> at = RandomVec(s.k * s.m, &rng);  // (k x m)
      const std::vector<float> c0 = RandomVec(s.m * s.n, &rng);

      std::vector<float> nn_serial = c0, nn_par = c0;
      std::vector<float> nt_serial = c0, nt_par = c0;
      std::vector<float> tn_serial = c0, tn_par = c0;
      gemm::SgemmNN(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                    nn_serial.data(), s.n, accumulate);
      gemm::SgemmNT(s.m, s.n, s.k, a.data(), s.k, bt.data(), s.k,
                    nt_serial.data(), s.n, accumulate);
      gemm::SgemmTN(s.m, s.n, s.k, at.data(), s.m, b.data(), s.n,
                    tn_serial.data(), s.n, accumulate);
      {
        gemm::ParallelScope scope(&pool);
        gemm::SgemmNN(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                      nn_par.data(), s.n, accumulate);
        gemm::SgemmNT(s.m, s.n, s.k, a.data(), s.k, bt.data(), s.k,
                      nt_par.data(), s.n, accumulate);
        gemm::SgemmTN(s.m, s.n, s.k, at.data(), s.m, b.data(), s.n,
                      tn_par.data(), s.n, accumulate);
      }
      EXPECT_TRUE(BitwiseEqual(nn_serial, nn_par))
          << "NN threads=" << threads << " m=" << s.m << " n=" << s.n
          << " k=" << s.k << " accumulate=" << accumulate;
      EXPECT_TRUE(BitwiseEqual(nt_serial, nt_par))
          << "NT threads=" << threads << " m=" << s.m << " n=" << s.n
          << " k=" << s.k << " accumulate=" << accumulate;
      EXPECT_TRUE(BitwiseEqual(tn_serial, tn_par))
          << "TN threads=" << threads << " m=" << s.m << " n=" << s.n
          << " k=" << s.k << " accumulate=" << accumulate;
    }
  }
}

// NaN/Inf must propagate identically when the work is split across bands:
// the parallel split must not introduce (or mask) any data-dependent skip.
TEST_P(ParallelKernelContract, NonFinitePropagationMatchesSerial) {
  const int64_t threads = GetParam();
  ThreadPool pool(threads);
  RngStream rng(uint64_t{300} + static_cast<uint64_t>(threads));
  const int64_t m = 128, n = 64, k = 48;  // over the parallel work floor
  std::vector<float> a = RandomVec(m * k, &rng);
  std::vector<float> b = RandomVec(k * n, &rng);
  a[5] = std::nanf("");
  a[static_cast<size_t>((m - 1) * k)] = INFINITY;  // last band's rows too
  b[11] = -INFINITY;
  std::vector<float> c_serial(static_cast<size_t>(m * n), 0.0f);
  std::vector<float> c_par = c_serial;
  gemm::SgemmNN(m, n, k, a.data(), k, b.data(), n, c_serial.data(), n, false);
  {
    gemm::ParallelScope scope(&pool);
    gemm::SgemmNN(m, n, k, a.data(), k, b.data(), n, c_par.data(), n, false);
  }
  EXPECT_TRUE(BitwiseEqual(c_serial, c_par)) << "threads=" << threads;
  bool saw_nan = false;
  for (float x : c_par) saw_nan |= std::isnan(x);
  EXPECT_TRUE(saw_nan);
}

// Prepacked B must be bit-identical to packing inside the call, serial and
// parallel, for both storage layouts — and repacking into the same PackedB
// (the per-round reuse pattern) must behave like a fresh pack.
TEST_P(ParallelKernelContract, PackedBBitwiseMatchesUnpacked) {
  const int64_t threads = GetParam();
  ThreadPool pool(threads);
  RngStream rng(uint64_t{400} + static_cast<uint64_t>(threads));
  gemm::PackedB pack_nn;  // reused across shapes: exercises repacking
  gemm::PackedB pack_nt;
  for (const Shape& s : kParallelShapes) {
    for (bool accumulate : {false, true}) {
      const std::vector<float> a = RandomVec(s.m * s.k, &rng);
      const std::vector<float> b = RandomVec(s.k * s.n, &rng);   // (k x n)
      const std::vector<float> bt = RandomVec(s.n * s.k, &rng);  // (n x k)
      const std::vector<float> c0 = RandomVec(s.m * s.n, &rng);
      gemm::PackBMatrix(s.n, s.k, b.data(), s.n, /*b_trans=*/false, &pack_nn);
      gemm::PackBMatrix(s.n, s.k, bt.data(), s.k, /*b_trans=*/true, &pack_nt);

      std::vector<float> nn = c0, nn_packed = c0, nn_packed_par = c0;
      std::vector<float> nt = c0, nt_packed = c0;
      gemm::SgemmNN(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, nn.data(),
                    s.n, accumulate);
      gemm::SgemmNT(s.m, s.n, s.k, a.data(), s.k, bt.data(), s.k, nt.data(),
                    s.n, accumulate);
      gemm::SgemmPackedB(s.m, s.n, s.k, a.data(), s.k, pack_nn,
                         nn_packed.data(), s.n, accumulate);
      gemm::SgemmPackedB(s.m, s.n, s.k, a.data(), s.k, pack_nt,
                         nt_packed.data(), s.n, accumulate);
      {
        gemm::ParallelScope scope(&pool);
        gemm::SgemmPackedB(s.m, s.n, s.k, a.data(), s.k, pack_nn,
                           nn_packed_par.data(), s.n, accumulate);
      }
      EXPECT_TRUE(BitwiseEqual(nn, nn_packed))
          << "NN-packed m=" << s.m << " n=" << s.n << " k=" << s.k
          << " accumulate=" << accumulate;
      EXPECT_TRUE(BitwiseEqual(nt, nt_packed))
          << "NT-packed m=" << s.m << " n=" << s.n << " k=" << s.k
          << " accumulate=" << accumulate;
      EXPECT_TRUE(BitwiseEqual(nn, nn_packed_par))
          << "NN-packed-parallel threads=" << threads << " m=" << s.m
          << " n=" << s.n << " k=" << s.k << " accumulate=" << accumulate;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelKernelContract,
                         ::testing::Values<int64_t>(1, 2, 4, 7));

// Smoke: the dispatch decision is observable.  On x86 the AVX-512 or AVX2
// micro-kernel is active; either way the bitwise tests above pin the
// result, so this just documents which path ran in the test log.
TEST(KernelContract, ReportsDispatchPath) {
  const bool avx2 = gemm::UsingAvx2Kernels();
  const bool avx512 = gemm::UsingAvx512Kernels();
  if (avx512) {
    EXPECT_TRUE(avx2);  // avx512f implies avx2 on every real CPU
  }
  SUCCEED() << "micro-kernel: "
            << (avx512 ? "AVX-512" : (avx2 ? "AVX2" : "generic"));
}

}  // namespace
}  // namespace fats
