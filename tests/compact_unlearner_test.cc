#include "core/compact_unlearner.h"

#include <gtest/gtest.h>

#include "test_workloads.h"

namespace fats {
namespace {

struct Trained {
  FederatedDataset data;
  FatsConfig config;
  std::unique_ptr<FatsTrainer> trainer;
};

Trained TrainTiny(int64_t clients = 12, int64_t n = 10, int64_t rounds = 4,
                  int64_t e = 3, uint64_t seed = 7) {
  Trained t;
  t.data = TinyImageData(clients, n);
  t.config = TinyFatsConfig(clients, n, rounds, e, 0.5, 0.5, seed);
  t.trainer =
      std::make_unique<FatsTrainer>(TinyModelSpec(), t.config, &t.data);
  t.trainer->Train();
  return t;
}

TEST(CompactUnlearnerTest, IndexMatchesFullStoreHistory) {
  Trained t = TrainTiny();
  CompactUnlearner unlearner(t.trainer.get());
  for (int64_t k = 0; k < t.data.num_clients(); ++k) {
    EXPECT_EQ(unlearner.index().ClientParticipated(k),
              t.trainer->store().EarliestClientRound(k) >= 1)
        << "client " << k;
    for (int64_t i = 0; i < t.data.samples_of(k); ++i) {
      EXPECT_EQ(unlearner.index().SampleUsed(k, i),
                t.trainer->store().EarliestSampleUse({k, i}) >= 1)
          << "sample (" << k << ", " << i << ")";
    }
  }
}

TEST(CompactUnlearnerTest, IndexIsOrdersOfMagnitudeSmallerThanFullStore) {
  Trained t = TrainTiny();
  CompactUnlearner unlearner(t.trainer.get());
  EXPECT_LT(unlearner.IndexBytes() * 100, t.trainer->store().ApproxBytes());
}

TEST(CompactUnlearnerTest, NonParticipantClientIsFree) {
  Trained t = TrainTiny(20);
  CompactUnlearner unlearner(t.trainer.get());
  int64_t target = -1;
  for (int64_t k = 0; k < t.data.num_clients(); ++k) {
    if (!unlearner.index().ClientParticipated(k)) {
      target = k;
      break;
    }
  }
  ASSERT_GE(target, 0) << "all clients participated; enlarge M";
  const Tensor before = t.trainer->global_params();
  UnlearningOutcome outcome =
      unlearner.UnlearnClient(target, t.config.total_iters_t()).value();
  EXPECT_FALSE(outcome.recomputed);
  EXPECT_TRUE(t.trainer->global_params().BitwiseEquals(before));
  EXPECT_FALSE(t.data.client_active(target));
}

TEST(CompactUnlearnerTest, ParticipantClientCausesFullRetrain) {
  Trained t = TrainTiny();
  CompactUnlearner unlearner(t.trainer.get());
  int64_t target = -1;
  for (int64_t k = 0; k < t.data.num_clients(); ++k) {
    if (unlearner.index().ClientParticipated(k)) {
      target = k;
      break;
    }
  }
  ASSERT_GE(target, 0);
  UnlearningOutcome outcome =
      unlearner.UnlearnClient(target, t.config.total_iters_t()).value();
  EXPECT_TRUE(outcome.recomputed);
  EXPECT_EQ(outcome.recomputed_rounds, t.config.rounds_r);
  EXPECT_EQ(outcome.recomputed_iterations, t.config.total_iters_t());
  // The retrained history never selects the removed client.
  EXPECT_FALSE(unlearner.index().ClientParticipated(target));
}

TEST(CompactUnlearnerTest, UsedSampleCausesFullRetrain) {
  Trained t = TrainTiny();
  CompactUnlearner unlearner(t.trainer.get());
  SampleRef target{-1, -1};
  for (int64_t k = 0; k < t.data.num_clients() && target.client < 0; ++k) {
    for (int64_t i = 0; i < t.data.samples_of(k); ++i) {
      if (unlearner.index().SampleUsed(k, i)) {
        target = {k, i};
        break;
      }
    }
  }
  ASSERT_GE(target.client, 0);
  UnlearningOutcome outcome =
      unlearner.UnlearnSample(target, t.config.total_iters_t()).value();
  EXPECT_TRUE(outcome.recomputed);
  EXPECT_EQ(outcome.recomputed_rounds, t.config.rounds_r);
  EXPECT_FALSE(t.data.sample_active(target.client, target.index));
  EXPECT_FALSE(unlearner.index().SampleUsed(target.client, target.index));
}

TEST(CompactUnlearnerTest, UnusedSampleIsFree) {
  Trained t = TrainTiny(16, 12);
  CompactUnlearner unlearner(t.trainer.get());
  SampleRef target{-1, -1};
  for (int64_t k = 0; k < t.data.num_clients() && target.client < 0; ++k) {
    for (int64_t i = 0; i < t.data.samples_of(k); ++i) {
      if (!unlearner.index().SampleUsed(k, i)) {
        target = {k, i};
        break;
      }
    }
  }
  ASSERT_GE(target.client, 0) << "every sample used; enlarge the workload";
  const Tensor before = t.trainer->global_params();
  UnlearningOutcome outcome =
      unlearner.UnlearnSample(target, t.config.total_iters_t()).value();
  EXPECT_FALSE(outcome.recomputed);
  EXPECT_TRUE(t.trainer->global_params().BitwiseEquals(before));
}

TEST(CompactUnlearnerTest, ErrorsOnInvalidTargets) {
  Trained t = TrainTiny();
  CompactUnlearner unlearner(t.trainer.get());
  EXPECT_FALSE(unlearner.UnlearnClient(999, 1).ok());
  EXPECT_FALSE(unlearner.UnlearnClient(0, 0).ok());
  EXPECT_FALSE(unlearner.UnlearnSample({0, 999}, 1).ok());
}

TEST(CompactUnlearnerTest, RetrainedModelKeepsUtility) {
  Trained t = TrainTiny(12, 12, 10, 3);
  const double before = t.trainer->EvaluateTestAccuracy();
  CompactUnlearner unlearner(t.trainer.get());
  int64_t target = 0;
  while (!unlearner.index().ClientParticipated(target)) ++target;
  ASSERT_TRUE(
      unlearner.UnlearnClient(target, t.config.total_iters_t()).ok());
  EXPECT_GT(t.trainer->EvaluateTestAccuracy(), before - 0.2);
}

TEST(CompactUnlearnerTest, SequentialRequestsKeepIndexConsistent) {
  Trained t = TrainTiny(16, 10, 4, 3);
  CompactUnlearner unlearner(t.trainer.get());
  for (int round = 0; round < 3; ++round) {
    int64_t target = -1;
    for (int64_t k = 0; k < t.data.num_clients(); ++k) {
      if (t.data.client_active(k)) {
        target = k;
        break;
      }
    }
    ASSERT_GE(target, 0);
    ASSERT_TRUE(
        unlearner.UnlearnClient(target, t.config.total_iters_t()).ok());
    // Index must agree with the post-retrain store.
    for (int64_t k = 0; k < t.data.num_clients(); ++k) {
      EXPECT_EQ(unlearner.index().ClientParticipated(k),
                t.trainer->store().EarliestClientRound(k) >= 1);
    }
  }
  EXPECT_EQ(t.data.num_active_clients(), 13);
}

}  // namespace
}  // namespace fats
