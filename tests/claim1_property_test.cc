// Statistical verification of Claim 1 (Appendix B.3): the mini-batch law
// after deletion equals ξ(N−1, b).
//
// Two facts are checked on a small instance where all C(N−1, b) batches can
// be enumerated:
//   1. The library's post-deletion sampler (positions over the active set)
//      is uniform over the subsets avoiding the deleted sample, each with
//      probability 1/C(N−1, b).
//   2. It matches the conditional law ξ(N, b | X_u ∉ B) obtained by
//      rejection from the pre-deletion sampler — the equality proved in
//      Claim 1, Case 2.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "fl/client.h"
#include "test_workloads.h"

namespace fats {
namespace {

// 99.9% chi-square critical value via the Wilson-Hilferty approximation.
double ChiSquareCritical999(int dof) {
  const double z = 3.0902;  // Phi^{-1}(0.999)
  const double d = static_cast<double>(dof);
  const double term = 1.0 - 2.0 / (9.0 * d) + z * std::sqrt(2.0 / (9.0 * d));
  return d * term * term * term;
}

std::string EncodeBatch(const std::vector<int64_t>& batch) {
  std::string out;
  for (int64_t i : batch) {
    out += std::to_string(i);
    out += ',';
  }
  return out;
}

int64_t Binomial(int64_t n, int64_t k) {
  int64_t result = 1;
  for (int64_t i = 0; i < k; ++i) {
    result = result * (n - i) / (i + 1);
  }
  return result;
}

class Claim1Test : public testing::TestWithParam<std::pair<int64_t, int64_t>> {
};

TEST_P(Claim1Test, PostDeletionSamplerIsUniformOverReducedSubsets) {
  const auto [n, b] = GetParam();
  FederatedDataset data = TinyImageData(1, n);
  const SampleRef deleted{0, 1};  // delete sample index 1
  ASSERT_TRUE(data.RemoveSample(deleted).ok());
  Model model(TinyModelSpec(), 1);
  ClientRuntime runtime(&data, &model);

  const int64_t num_subsets = Binomial(n - 1, b);
  const int trials = 4000 * static_cast<int>(num_subsets);
  RngStream rng(uint64_t{17});
  std::map<std::string, int> counts;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<int64_t> batch = runtime.SampleMinibatch(0, b, &rng);
    EXPECT_EQ(std::count(batch.begin(), batch.end(), deleted.index), 0);
    counts[EncodeBatch(batch)]++;
  }
  ASSERT_EQ(static_cast<int64_t>(counts.size()), num_subsets)
      << "not all subsets of the reduced data observed";
  const double expected = static_cast<double>(trials) / num_subsets;
  double chi2 = 0.0;
  for (const auto& [batch, count] : counts) {
    chi2 += (count - expected) * (count - expected) / expected;
  }
  EXPECT_LT(chi2, ChiSquareCritical999(static_cast<int>(num_subsets) - 1));
}

TEST_P(Claim1Test, ConditionalLawEqualsReducedLaw) {
  const auto [n, b] = GetParam();
  // Arm 1: rejection from ξ(N, b) conditioned on X_u ∉ B.
  FederatedDataset full = TinyImageData(1, n);
  Model model(TinyModelSpec(), 1);
  ClientRuntime full_runtime(&full, &model);
  // Arm 2: the reduced sampler ξ(N−1, b).
  FederatedDataset reduced = TinyImageData(1, n);
  ASSERT_TRUE(reduced.RemoveSample({0, 1}).ok());
  ClientRuntime reduced_runtime(&reduced, &model);

  const int64_t num_subsets = Binomial(n - 1, b);
  const int target = 3000 * static_cast<int>(num_subsets);
  RngStream rng_full(uint64_t{18});
  RngStream rng_reduced(uint64_t{19});
  std::map<std::string, std::pair<int, int>> counts;
  int accepted = 0;
  while (accepted < target) {
    std::vector<int64_t> batch = full_runtime.SampleMinibatch(0, b, &rng_full);
    if (std::count(batch.begin(), batch.end(), 1) > 0) continue;  // reject
    counts[EncodeBatch(batch)].first++;
    ++accepted;
  }
  for (int trial = 0; trial < target; ++trial) {
    counts[EncodeBatch(reduced_runtime.SampleMinibatch(0, b, &rng_reduced))]
        .second++;
  }
  // Two-sample chi-square (equal sample sizes).
  double chi2 = 0.0;
  int dof = -1;
  for (const auto& [batch, pair] : counts) {
    const double total = pair.first + pair.second;
    const double expected = total / 2.0;
    chi2 += (pair.first - expected) * (pair.first - expected) / expected;
    chi2 += (pair.second - expected) * (pair.second - expected) / expected;
    ++dof;
  }
  ASSERT_GT(dof, 0);
  EXPECT_LT(chi2, ChiSquareCritical999(dof));
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, Claim1Test,
    testing::Values(std::make_pair<int64_t, int64_t>(5, 2),
                    std::make_pair<int64_t, int64_t>(4, 1),
                    std::make_pair<int64_t, int64_t>(6, 3)),
    [](const testing::TestParamInfo<std::pair<int64_t, int64_t>>& param_info) {
      // Sequential appends: literal + to_string chains trip GCC 12's
      // -Wrestrict false positive (PR 105651) at -O3 under -Werror.
      std::string name = "N";
      name += std::to_string(param_info.param.first);
      name += "b";
      name += std::to_string(param_info.param.second);
      return name;
    });

TEST(Claim1FormulaTest, InclusionProbabilityMatchesBOverN) {
  // ξ(N,b)({X_u ∈ B}) = b/N, the quantity used in the Claim 1 proof.
  const int64_t n = 8;
  const int64_t b = 3;
  FederatedDataset data = TinyImageData(1, n);
  Model model(TinyModelSpec(), 1);
  ClientRuntime runtime(&data, &model);
  RngStream rng(uint64_t{20});
  const int trials = 40000;
  int contains = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<int64_t> batch = runtime.SampleMinibatch(0, b, &rng);
    if (std::count(batch.begin(), batch.end(), 2) > 0) ++contains;
  }
  EXPECT_NEAR(contains / static_cast<double>(trials),
              static_cast<double>(b) / n, 0.01);
}

}  // namespace
}  // namespace fats
