// Empirical checks of the convergence behaviour predicted by Theorem 2 /
// Corollary 1 and Remark 4 (utility of unlearned models).

#include <gtest/gtest.h>

#include <cmath>

#include "core/sample_unlearner.h"
#include "core/tv_stability.h"
#include "test_workloads.h"

namespace fats {
namespace {

/// ||∇F(θ)||² of the global empirical risk at the trainer's current model,
/// computed over all active data (the quantity bounded by Theorem 2).
double GlobalSquaredGradNorm(FatsTrainer* trainer) {
  FederatedDataset* data = trainer->data();
  Model* model = trainer->model();
  Tensor sum({model->NumParameters()});
  int64_t clients = 0;
  for (int64_t k : data->active_clients()) {
    Batch batch = data->MakeBatch(k, data->active_sample_indices(k));
    model->ComputeLossAndGradients(batch.inputs, batch.labels);
    sum += model->GetGradients();
    ++clients;
  }
  sum *= 1.0f / static_cast<float>(clients);
  return sum.SquaredNorm();
}

double MeanFinalGradNorm(double rho_s, int64_t clients, int64_t n,
                         int seeds) {
  double total = 0.0;
  for (int seed = 0; seed < seeds; ++seed) {
    FederatedDataset data = TinyImageData(clients, n);
    FatsConfig config = TinyFatsConfig(clients, n, /*rounds=*/8,
                                       /*e=*/2, rho_s, 0.5,
                                       100 + static_cast<uint64_t>(seed));
    FatsTrainer trainer(TinyModelSpec(), config, &data);
    trainer.Train();
    total += GlobalSquaredGradNorm(&trainer);
  }
  return total / seeds;
}

TEST(ConvergenceTest, TrainingDrivesGradientNormDown) {
  FederatedDataset data = TinyImageData(8, 12);
  FatsConfig config = TinyFatsConfig(8, 12, 10, 3);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  // Gradient norm at initialization.
  const double initial = GlobalSquaredGradNorm(&trainer);
  trainer.Train();
  const double trained = GlobalSquaredGradNorm(&trainer);
  EXPECT_LT(trained, initial);
}

TEST(ConvergenceTest, LargerRhoSGivesLowerStationarityError) {
  // Theorem 2: error ~ O(1/sqrt(ρ_S·M·N)). Averaged over seeds, a 8x larger
  // ρ_S (larger mini-batches) should not be worse by more than noise.
  const double high_rho = MeanFinalGradNorm(1.0, 8, 16, 5);
  const double low_rho = MeanFinalGradNorm(0.125, 8, 16, 5);
  EXPECT_LT(high_rho, low_rho * 1.5)
      << "high=" << high_rho << " low=" << low_rho;
}

TEST(ConvergenceTest, AccuracyImprovesWithRhoS) {
  // The Figure 4 trend: utility rises with ρ_S.
  auto mean_accuracy = [](double rho_s) {
    double total = 0.0;
    const int seeds = 4;
    for (int seed = 0; seed < seeds; ++seed) {
      FederatedDataset data = TinyImageData(8, 16);
      FatsConfig config = TinyFatsConfig(8, 16, 6, 2, rho_s, 0.5,
                                         300 + static_cast<uint64_t>(seed));
      FatsTrainer trainer(TinyModelSpec(), config, &data);
      trainer.Train();
      total += trainer.EvaluateTestAccuracy();
    }
    return total / seeds;
  };
  EXPECT_GE(mean_accuracy(1.0) + 0.1, mean_accuracy(0.125));
}

TEST(ConvergenceTest, ConditionSevenLearningRateIsPositiveAndScales) {
  // The theoretical learning-rate machinery produces usable values for the
  // tiny workload's scale.
  ConvergenceConstants c;
  c.smoothness_l = 1.0;
  c.gradient_variance_g2 = 1.0;
  c.heterogeneity_lambda = 2.0;
  c.initial_gap = 1.0;
  const double eta_max = MaxStableLearningRate(c, 3);
  EXPECT_GT(eta_max, 0.0);
  EXPECT_TRUE(LearningRateConditionHolds(eta_max * 0.5, c, 3));
  const double eta_theory = TheoreticalLearningRate(c, 0.5, 8, 12, 24);
  EXPECT_GT(eta_theory, 0.0);
  EXPECT_LT(eta_theory, 10.0);
}

TEST(ConvergenceTest, UnlearnedModelPreservesErrorRegime) {
  // Remark 4: with O(MN) samples remaining, the unlearned model keeps the
  // same convergence regime — compare gradient norms before/after a
  // deletion + re-computation.
  FederatedDataset data = TinyImageData(8, 16);
  FatsConfig config = TinyFatsConfig(8, 16, 8, 2);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  trainer.Train();
  const double before = GlobalSquaredGradNorm(&trainer);
  // Find a used sample to force an actual re-computation.
  SampleRef target{-1, -1};
  for (int64_t k = 0; k < data.num_clients() && target.client < 0; ++k) {
    for (int64_t i = 0; i < data.samples_of(k); ++i) {
      if (trainer.store().EarliestSampleUse({k, i}) >= 1) {
        target = {k, i};
        break;
      }
    }
  }
  ASSERT_GE(target.client, 0);
  SampleUnlearner unlearner(&trainer);
  ASSERT_TRUE(unlearner.Unlearn(target, config.total_iters_t()).ok());
  const double after = GlobalSquaredGradNorm(&trainer);
  EXPECT_LT(after, 10.0 * before + 0.5);
}

}  // namespace
}  // namespace fats
