#include "util/csv_writer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace fats {
namespace {

TEST(CsvEscapeTest, PlainValuesUnchanged) {
  EXPECT_EQ(CsvEscape("abc"), "abc");
  EXPECT_EQ(CsvEscape("1.5"), "1.5");
}

TEST(CsvEscapeTest, QuotesFieldsWithCommas) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, DoublesEmbeddedQuotes) {
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriterTest, WritesHeaderOnce) {
  std::ostringstream out;
  CsvWriter writer(&out, "");
  writer.WriteHeader({"a", "b"});
  writer.WriteHeader({"c", "d"});  // ignored
  writer.WriteRow({"1", "2"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(CsvWriterTest, AppliesLinePrefix) {
  std::ostringstream out;
  CsvWriter writer(&out, "# CSV,");
  writer.WriteRow({"x", "y"});
  EXPECT_EQ(out.str(), "# CSV,x,y\n");
}

TEST(CsvWriterTest, FileTargetReportsOpenFailure) {
  CsvWriter writer("/nonexistent_dir_zzz/file.csv");
  EXPECT_FALSE(writer.status().ok());
  writer.WriteRow({"ignored"});  // must not crash
}

TEST(CsvWriterTest, FileTargetWrites) {
  std::string path = testing::TempDir() + "/csv_writer_test.csv";
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.status().ok());
    writer.WriteHeader({"k", "v"});
    writer.WriteRow({"a", "1"});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "k,v");
  EXPECT_EQ(line2, "a,1");
}

}  // namespace
}  // namespace fats
