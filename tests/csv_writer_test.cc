#include "util/csv_writer.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "fl/train_log.h"

namespace fats {
namespace {

// True when /dev/full is available (Linux): writes to it fail with ENOSPC,
// which is how we simulate a full disk.
bool HaveDevFull() {
  std::ofstream probe("/dev/full");
  return probe.is_open();
}

TEST(CsvEscapeTest, PlainValuesUnchanged) {
  EXPECT_EQ(CsvEscape("abc"), "abc");
  EXPECT_EQ(CsvEscape("1.5"), "1.5");
}

TEST(CsvEscapeTest, QuotesFieldsWithCommas) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, DoublesEmbeddedQuotes) {
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriterTest, WritesHeaderOnce) {
  std::ostringstream out;
  CsvWriter writer(&out, "");
  writer.WriteHeader({"a", "b"});
  writer.WriteHeader({"c", "d"});  // ignored
  writer.WriteRow({"1", "2"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(CsvWriterTest, AppliesLinePrefix) {
  std::ostringstream out;
  CsvWriter writer(&out, "# CSV,");
  writer.WriteRow({"x", "y"});
  EXPECT_EQ(out.str(), "# CSV,x,y\n");
}

TEST(CsvWriterTest, FileTargetReportsOpenFailure) {
  CsvWriter writer("/nonexistent_dir_zzz/file.csv");
  EXPECT_FALSE(writer.status().ok());
  writer.WriteRow({"ignored"});  // must not crash
}

TEST(CsvWriterTest, FileTargetWrites) {
  std::string path = testing::TempDir() + "/csv_writer_test.csv";
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.status().ok());
    writer.WriteHeader({"k", "v"});
    writer.WriteRow({"a", "1"});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "k,v");
  EXPECT_EQ(line2, "a,1");
}

TEST(CsvWriterTest, FinishReportsOkOnHappyPath) {
  std::string path = testing::TempDir() + "/csv_writer_finish.csv";
  CsvWriter writer(path);
  ASSERT_TRUE(writer.status().ok());
  writer.WriteRow({"a", "1"});
  EXPECT_TRUE(writer.Finish().ok());
  EXPECT_TRUE(writer.Finish().ok());  // safe to call twice
  writer.WriteRow({"late"});          // no-op after Finish, must not crash
}

TEST(CsvWriterTest, FullDiskSurfacesAsIoErrorAtFinish) {
  if (!HaveDevFull()) GTEST_SKIP() << "/dev/full not available";
  CsvWriter writer("/dev/full");
  ASSERT_TRUE(writer.status().ok());
  writer.WriteRow({"a", "1"});
  Status status = writer.Finish();
  ASSERT_FALSE(status.ok()) << "full disk was not reported";
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(CsvWriterTest, FullDiskLatchesDuringLargeWrites) {
  if (!HaveDevFull()) GTEST_SKIP() << "/dev/full not available";
  CsvWriter writer("/dev/full");
  ASSERT_TRUE(writer.status().ok());
  // A row larger than any stdio buffer forces the stream to hit the device
  // mid-write, so the failure latches in WriteRow itself.
  const std::string big(1 << 22, 'x');
  writer.WriteRow({big});
  writer.WriteRow({big});
  EXPECT_FALSE(writer.Finish().ok());
}

TEST(TrainLogCsvTest, WriteCsvFileMatchesToCsv) {
  TrainLog log;
  log.Append({1, 0.5, 1.25, false});
  log.Append({2, 0.75, 0.5, true});
  std::string path = testing::TempDir() + "/train_log_write.csv";
  ASSERT_TRUE(log.WriteCsvFile(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, log.ToCsv());
}

TEST(TrainLogCsvTest, WriteCsvFilePropagatesOpenFailure) {
  TrainLog log;
  log.Append({1, 0.5, 1.25, false});
  Status status = log.WriteCsvFile("/nonexistent_dir_zzz/log.csv");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(TrainLogCsvTest, WriteCsvFilePropagatesFullDisk) {
  if (!HaveDevFull()) GTEST_SKIP() << "/dev/full not available";
  TrainLog log;
  for (int64_t r = 1; r <= 64; ++r) {
    log.Append({r, 0.5, 1.0, false});
  }
  Status status = log.WriteCsvFile("/dev/full");
  ASSERT_FALSE(status.ok()) << "full disk was not reported";
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace fats
