// Deterministic client dropout: unavailable clients are retried by
// re-executing the exact same local work from the exact same Philox stream
// keys, so dropout perturbs *when* work happens but never *what* is
// computed. The availability schedule itself is a pure function of
// (availability_seed, round, iteration, client, attempt), making dropped
// runs replayable and — crucially — trace-identical to a no-dropout run.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/sample_unlearner.h"
#include "fl/availability.h"
#include "test_workloads.h"

namespace fats {
namespace {

constexpr int64_t kTotal = 8;  // R=4, E=2

struct Env {
  FederatedDataset data;
  FatsConfig config;
  std::unique_ptr<FatsTrainer> trainer;
};

Env MakeEnv(double dropout_rate, int64_t num_threads = 1,
            uint64_t availability_seed = 11) {
  Env env;
  env.data = TinyImageData(5, 8);
  env.config = TinyFatsConfig(5, 8, 4, 2);
  env.config.dropout_rate = dropout_rate;
  env.config.availability_seed = availability_seed;
  env.config.num_threads = num_threads;
  env.trainer =
      std::make_unique<FatsTrainer>(TinyModelSpec(), env.config, &env.data);
  return env;
}

TEST(AvailabilityScheduleTest, IsDeterministic) {
  AvailabilityConfig config;
  config.dropout_rate = 0.4;
  config.seed = 3;
  AvailabilitySchedule a(config);
  AvailabilitySchedule b(config);
  for (int64_t r = 1; r <= 3; ++r) {
    for (int64_t t = 1; t <= 6; ++t) {
      for (int64_t client = 0; client < 5; ++client) {
        EXPECT_EQ(a.DroppedAttempts(r, t, client),
                  b.DroppedAttempts(r, t, client));
        for (int64_t attempt = 0; attempt < 3; ++attempt) {
          EXPECT_EQ(a.Available(r, t, client, attempt),
                    b.Available(r, t, client, attempt));
        }
      }
    }
  }
}

TEST(AvailabilityScheduleTest, ZeroRateNeverDrops) {
  AvailabilityConfig config;
  config.dropout_rate = 0.0;
  AvailabilitySchedule schedule(config);
  EXPECT_FALSE(schedule.enabled());
  for (int64_t t = 1; t <= 10; ++t) {
    EXPECT_EQ(schedule.DroppedAttempts(1, t, t % 3), 0);
  }
}

TEST(AvailabilityScheduleTest, RetriesAreBoundedByMaxRetries) {
  AvailabilityConfig config;
  config.dropout_rate = 0.95;  // nearly always unavailable
  config.seed = 5;
  config.max_retries = 4;
  AvailabilitySchedule schedule(config);
  bool saw_drop = false;
  for (int64_t t = 1; t <= 20; ++t) {
    for (int64_t client = 0; client < 5; ++client) {
      const int64_t dropped = schedule.DroppedAttempts(2, t, client);
      EXPECT_LE(dropped, config.max_retries);
      saw_drop |= dropped > 0;
      // The attempt at max_retries is always granted.
      EXPECT_TRUE(schedule.Available(2, t, client, config.max_retries));
    }
  }
  EXPECT_TRUE(saw_drop);
}

TEST(DropoutTest, TwoDroppedRunsAreBitIdentical) {
  Env a = MakeEnv(0.3);
  Env b = MakeEnv(0.3);
  a.trainer->Train();
  b.trainer->Train();
  EXPECT_TRUE(a.trainer->global_params().BitwiseEquals(b.trainer->global_params()));
  EXPECT_EQ(a.trainer->dropout_retries(), b.trainer->dropout_retries());
  EXPECT_EQ(a.trainer->log().ToCsv(), b.trainer->log().ToCsv());
  EXPECT_EQ(a.trainer->comm_stats().uplink_bytes(),
            b.trainer->comm_stats().uplink_bytes());
  EXPECT_EQ(a.trainer->comm_stats().downlink_bytes(),
            b.trainer->comm_stats().downlink_bytes());
}

// The heart of the exactness argument: dropping and retrying clients must
// leave the entire training trace — selections, mini-batches, local and
// global models — bit-identical to a run with no dropout at all, because
// retries redraw nothing.
TEST(DropoutTest, DroppedRunMatchesNoDropoutTraceExactly) {
  Env dropped = MakeEnv(0.3);
  Env clean = MakeEnv(0.0);
  dropped.trainer->Train();
  clean.trainer->Train();

  // Enough dropout to mean something: at least 10% of client executions
  // were dropped at least once. (Deterministic given the fixed seeds.)
  ASSERT_GT(dropped.trainer->dropout_retries(), 0);
  const double executions =
      static_cast<double>(dropped.trainer->local_iterations_executed());
  ASSERT_GT(executions, 0.0);
  EXPECT_GE(static_cast<double>(dropped.trainer->dropout_retries()),
            0.10 * executions)
      << "dropout_rate=0.3 should drop well over 10% of executions";
  EXPECT_EQ(clean.trainer->dropout_retries(), 0);

  // Model trajectory and logs match bit for bit.
  EXPECT_TRUE(dropped.trainer->global_params().BitwiseEquals(
      clean.trainer->global_params()));
  EXPECT_EQ(dropped.trainer->log().ToCsv(), clean.trainer->log().ToCsv());

  // The stored trace matches record by record.
  const StateStore& ds = dropped.trainer->store();
  const StateStore& cs = clean.trainer->store();
  ASSERT_EQ(ds.SelectionRounds(), cs.SelectionRounds());
  for (int64_t round : ds.SelectionRounds()) {
    ASSERT_NE(ds.GetClientSelection(round), nullptr);
    ASSERT_NE(cs.GetClientSelection(round), nullptr);
    EXPECT_EQ(*ds.GetClientSelection(round), *cs.GetClientSelection(round))
        << "selection differs in round " << round;
  }
  ASSERT_EQ(ds.MinibatchKeys(), cs.MinibatchKeys());
  for (const auto& [iter, client] : ds.MinibatchKeys()) {
    EXPECT_EQ(*ds.GetMinibatch(iter, client), *cs.GetMinibatch(iter, client))
        << "mini-batch differs at (" << iter << ", " << client << ")";
  }
  ASSERT_EQ(ds.LocalModelKeys(), cs.LocalModelKeys());
  for (const auto& [iter, client] : ds.LocalModelKeys()) {
    EXPECT_TRUE(ds.GetLocalModel(iter, client)
                    ->BitwiseEquals(*cs.GetLocalModel(iter, client)))
        << "local model differs at (" << iter << ", " << client << ")";
  }
  ASSERT_EQ(ds.GlobalModelRounds(), cs.GlobalModelRounds());
  for (int64_t round : ds.GlobalModelRounds()) {
    EXPECT_TRUE(
        ds.GetGlobalModel(round)->BitwiseEquals(*cs.GetGlobalModel(round)))
        << "global model differs in round " << round;
  }

  // The retries are visible in the communication ledger: each retry is one
  // extra broadcast of the round's global model.
  EXPECT_GT(dropped.trainer->comm_stats().downlink_bytes(),
            clean.trainer->comm_stats().downlink_bytes());
  EXPECT_EQ(dropped.trainer->comm_stats().uplink_bytes(),
            clean.trainer->comm_stats().uplink_bytes());
}

TEST(DropoutTest, ParallelDroppedRunMatchesSerial) {
  Env serial = MakeEnv(0.3, /*num_threads=*/1);
  Env parallel = MakeEnv(0.3, /*num_threads=*/3);
  serial.trainer->Train();
  parallel.trainer->Train();
  EXPECT_TRUE(serial.trainer->global_params().BitwiseEquals(
      parallel.trainer->global_params()));
  EXPECT_EQ(serial.trainer->dropout_retries(),
            parallel.trainer->dropout_retries());
}

TEST(DropoutTest, UnlearningOnDroppedRunMatchesNoDropout) {
  Env dropped = MakeEnv(0.3);
  Env clean = MakeEnv(0.0);
  dropped.trainer->Train();
  clean.trainer->Train();

  // Pick a sample training actually used so the request forces
  // re-computation (both traces are identical, so one probe suffices).
  SampleRef target{0, 0};
  bool found = false;
  for (int64_t client = 0; client < 5 && !found; ++client) {
    for (int64_t index = 0; index < 8 && !found; ++index) {
      if (clean.trainer->store().EarliestSampleUse({client, index}) > 0) {
        target = {client, index};
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);

  SampleUnlearner du(dropped.trainer.get());
  SampleUnlearner cu(clean.trainer.get());
  Result<UnlearningOutcome> doc = du.Unlearn(target, kTotal);
  Result<UnlearningOutcome> coc = cu.Unlearn(target, kTotal);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(coc.ok()) << coc.status().ToString();
  EXPECT_TRUE(doc->recomputed);
  EXPECT_EQ(doc->recomputed, coc->recomputed);
  EXPECT_EQ(doc->restart_iteration, coc->restart_iteration);
  // The recomputation runs under the same availability schedule, so even
  // the unlearned models match bit for bit.
  EXPECT_TRUE(dropped.trainer->global_params().BitwiseEquals(
      clean.trainer->global_params()));
}

TEST(DropoutTest, DifferentAvailabilitySeedsStillConverge) {
  // Changing only the availability seed changes which attempts drop but
  // not the computed trajectory.
  Env a = MakeEnv(0.3, 1, /*availability_seed=*/11);
  Env b = MakeEnv(0.3, 1, /*availability_seed=*/77);
  a.trainer->Train();
  b.trainer->Train();
  EXPECT_TRUE(a.trainer->global_params().BitwiseEquals(b.trainer->global_params()));
}

}  // namespace
}  // namespace fats
