// Transport layer unit tests: wire frame codec (roundtrip + every reject
// path), the LocalTransport ring buffer (FIFO, bounds, blocking pairs under
// real concurrency — the tsan target), the deterministic fault model, and
// the reliable channel's retry/dedup/forced-delivery protocol.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "transport/fault_injection.h"
#include "transport/reliable_channel.h"
#include "transport/transport.h"
#include "transport/wire_format.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace fats {
namespace {

using transport::ChannelStats;
using transport::Direction;
using transport::EncodedModel;
using transport::FaultAction;
using transport::LocalTransport;
using transport::MessageAddress;
using transport::MessageType;
using transport::ReliableChannel;
using transport::TransportFaultModel;
using transport::TransportFaultSpec;
using transport::WireMessage;

WireMessage SampleMessage() {
  WireMessage m;
  m.type = MessageType::kModelUpdate;
  m.round = 7;
  m.iteration = 13;
  m.client = 3;
  m.seq = 2;
  m.payload = "the quick brown fox";
  return m;
}

// --- wire format ---

TEST(WireFormatTest, FrameRoundTripsEveryField) {
  const WireMessage m = SampleMessage();
  const std::string frame = transport::EncodeFrame(m);
  ASSERT_EQ(static_cast<int64_t>(frame.size()),
            transport::kFrameHeaderBytes +
                static_cast<int64_t>(m.payload.size()));
  Result<WireMessage> back = transport::DecodeFrame(frame);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->type, m.type);
  EXPECT_EQ(back->round, m.round);
  EXPECT_EQ(back->iteration, m.iteration);
  EXPECT_EQ(back->client, m.client);
  EXPECT_EQ(back->seq, m.seq);
  EXPECT_EQ(back->payload, m.payload);
}

TEST(WireFormatTest, EmptyPayloadRoundTrips) {
  WireMessage m = SampleMessage();
  m.payload.clear();
  Result<WireMessage> back =
      transport::DecodeFrame(transport::EncodeFrame(m));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->payload.empty());
}

TEST(WireFormatTest, BadMagicIsRejected) {
  std::string frame = transport::EncodeFrame(SampleMessage());
  frame[0] ^= 0xFF;
  Result<WireMessage> back = transport::DecodeFrame(frame);
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireFormatTest, WrongVersionIsRejected) {
  std::string frame = transport::EncodeFrame(SampleMessage());
  frame[4] = static_cast<char>(transport::kWireVersion + 1);
  EXPECT_FALSE(transport::DecodeFrame(frame).ok());
}

TEST(WireFormatTest, TruncationIsRejectedAtEveryCut) {
  const std::string frame = transport::EncodeFrame(SampleMessage());
  for (size_t cut : {size_t{0}, size_t{11},
                     static_cast<size_t>(transport::kFrameHeaderBytes) - 1,
                     static_cast<size_t>(transport::kFrameHeaderBytes),
                     frame.size() - 1}) {
    EXPECT_FALSE(transport::DecodeFrame(frame.substr(0, cut)).ok())
        << "cut at " << cut << " slipped through";
  }
}

TEST(WireFormatTest, BitFlipAnywhereInPayloadIsRejectedByCrc) {
  const WireMessage m = SampleMessage();
  const std::string frame = transport::EncodeFrame(m);
  for (size_t byte = 0; byte < m.payload.size(); ++byte) {
    std::string flipped = frame;
    flipped[static_cast<size_t>(transport::kFrameHeaderBytes) + byte] ^= 0x10;
    Result<WireMessage> back = transport::DecodeFrame(flipped);
    EXPECT_FALSE(back.ok()) << "flip in payload byte " << byte;
    EXPECT_EQ(back.status().code(), StatusCode::kIoError);
  }
}

TEST(WireFormatTest, ModelPayloadIsBitExact) {
  Tensor params({5}, {1.5f, -2.25f, 0.0f, 3.0e-7f, -0.0f});
  const std::string payload = transport::EncodeModelPayload(params);
  EXPECT_EQ(payload.size(), 5u * 4u);
  Result<Tensor> back = transport::DecodeModelPayload(payload);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->BitwiseEquals(params));
}

TEST(WireFormatTest, ModelPayloadRejectsRaggedLength) {
  EXPECT_FALSE(transport::DecodeModelPayload("abc").ok());
}

TEST(WireFormatTest, ParticipationPayloadRoundTrips) {
  const std::vector<int64_t> multiset = {3, 1, 4, 1, 5};
  Result<std::vector<int64_t>> back = transport::DecodeParticipationPayload(
      transport::EncodeParticipationPayload(multiset));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, multiset);
}

TEST(WireFormatTest, CommChargePayloadRoundTrips) {
  transport::CommCharge charge;
  charge.rounds = 3;
  charge.uplink_bytes = 1024;
  charge.downlink_bytes = 2048;
  charge.retransmit_bytes = 96;
  Result<transport::CommCharge> back = transport::DecodeCommChargePayload(
      transport::EncodeCommChargePayload(charge));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rounds, charge.rounds);
  EXPECT_EQ(back->uplink_bytes, charge.uplink_bytes);
  EXPECT_EQ(back->downlink_bytes, charge.downlink_bytes);
  EXPECT_EQ(back->retransmit_bytes, charge.retransmit_bytes);
}

// --- LocalTransport ring buffer ---

TEST(LocalTransportTest, LanesAreFifoAndIndependent) {
  LocalTransport wire(4);
  ASSERT_TRUE(wire.PushFrame(Direction::kDownlink, "d1").ok());
  ASSERT_TRUE(wire.PushFrame(Direction::kUplink, "u1").ok());
  ASSERT_TRUE(wire.PushFrame(Direction::kDownlink, "d2").ok());
  EXPECT_EQ(wire.PendingFrames(Direction::kDownlink), 2);
  EXPECT_EQ(wire.PendingFrames(Direction::kUplink), 1);
  Result<std::string> f = wire.PopFrame(Direction::kDownlink);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f, "d1");
  f = wire.PopFrame(Direction::kDownlink);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f, "d2");
  f = wire.PopFrame(Direction::kUplink);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f, "u1");
}

TEST(LocalTransportTest, FullLaneRefusesAndEmptyLaneTimesOut) {
  LocalTransport wire(2);
  ASSERT_TRUE(wire.PushFrame(Direction::kUplink, "a").ok());
  ASSERT_TRUE(wire.PushFrame(Direction::kUplink, "b").ok());
  Status full = wire.PushFrame(Direction::kUplink, "c");
  EXPECT_FALSE(full.ok());
  EXPECT_EQ(full.code(), StatusCode::kFailedPrecondition);
  Result<std::string> empty = wire.PopFrame(Direction::kDownlink);
  EXPECT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kNotFound);
}

TEST(LocalTransportTest, RingWrapsAroundManyTimes) {
  LocalTransport wire(3);
  for (int i = 0; i < 50; ++i) {
    const std::string frame = "frame-" + std::to_string(i);
    ASSERT_TRUE(wire.PushFrame(Direction::kDownlink, frame).ok());
    Result<std::string> back = wire.PopFrame(Direction::kDownlink);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, frame);
  }
  EXPECT_EQ(wire.PendingFrames(Direction::kDownlink), 0);
}

TEST(LocalTransportTest, BlockingPopTimesOutOnSilence) {
  LocalTransport wire(2);
  Result<std::string> f = wire.PopFrameBlocking(Direction::kUplink, 10);
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kNotFound);
}

// The tsan target: a real producer and a real consumer racing on one lane
// through the blocking API, pushing far more frames than the lane holds.
// Ordering and content must survive; tsan must see no races.
TEST(LocalTransportTest, BlockingProducerConsumerKeepsOrderUnderConcurrency) {
  constexpr int64_t kFrames = 200;
  LocalTransport wire(4);
  std::vector<std::string> received;
  received.reserve(kFrames);
  bool producer_ok = true;
  bool consumer_ok = true;
  ThreadPool pool(2);
  pool.ParallelFor(2, [&](int64_t task, int64_t) {
    if (task == 0) {
      for (int64_t i = 0; i < kFrames; ++i) {
        const std::string frame = "seq-" + std::to_string(i);
        if (!wire.PushFrameBlocking(Direction::kUplink, frame, 30000).ok()) {
          producer_ok = false;
          return;
        }
      }
    } else {
      for (int64_t i = 0; i < kFrames; ++i) {
        Result<std::string> frame =
            wire.PopFrameBlocking(Direction::kUplink, 30000);
        if (!frame.ok()) {
          consumer_ok = false;
          return;
        }
        received.push_back(*std::move(frame));
      }
    }
  });
  ASSERT_TRUE(producer_ok);
  ASSERT_TRUE(consumer_ok);
  ASSERT_EQ(static_cast<int64_t>(received.size()), kFrames);
  for (int64_t i = 0; i < kFrames; ++i) {
    EXPECT_EQ(received[static_cast<size_t>(i)], "seq-" + std::to_string(i));
  }
}

// --- fault spec parsing ---

TEST(TransportFaultSpecTest, EmptyParsesDisabled) {
  Result<TransportFaultSpec> spec = TransportFaultSpec::Parse("");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->enabled());
}

TEST(TransportFaultSpecTest, FullSpecParses) {
  Result<TransportFaultSpec> spec = TransportFaultSpec::Parse(
      "drop=0.2,corrupt=0.05,truncate=0.05,duplicate=0.05,delay=0.1,"
      "seed=7,max_retries=5,backoff_base=2,backoff_cap=32");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_DOUBLE_EQ(spec->drop_rate, 0.2);
  EXPECT_DOUBLE_EQ(spec->corrupt_rate, 0.05);
  EXPECT_DOUBLE_EQ(spec->truncate_rate, 0.05);
  EXPECT_DOUBLE_EQ(spec->duplicate_rate, 0.05);
  EXPECT_DOUBLE_EQ(spec->delay_rate, 0.1);
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_EQ(spec->max_retries, 5);
  EXPECT_EQ(spec->backoff_base_units, 2);
  EXPECT_EQ(spec->backoff_cap_units, 32);
  EXPECT_TRUE(spec->enabled());
}

TEST(TransportFaultSpecTest, RejectsBadInput) {
  EXPECT_FALSE(TransportFaultSpec::Parse("drop=1.5").ok());
  EXPECT_FALSE(TransportFaultSpec::Parse("drop=-0.1").ok());
  EXPECT_FALSE(TransportFaultSpec::Parse("drop=0.6,corrupt=0.6").ok());
  EXPECT_FALSE(TransportFaultSpec::Parse("gremlins=0.5").ok());
  EXPECT_FALSE(TransportFaultSpec::Parse("drop").ok());
  EXPECT_FALSE(TransportFaultSpec::Parse("drop=0.5,max_retries=0").ok());
  EXPECT_FALSE(
      TransportFaultSpec::Parse("drop=0.5,backoff_base=4,backoff_cap=2").ok());
}

TEST(TransportFaultSpecTest, ToStringRoundTrips) {
  Result<TransportFaultSpec> spec =
      TransportFaultSpec::Parse("drop=0.25,seed=3");
  ASSERT_TRUE(spec.ok());
  Result<TransportFaultSpec> again =
      TransportFaultSpec::Parse(spec->ToString());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_DOUBLE_EQ(again->drop_rate, 0.25);
  EXPECT_EQ(again->seed, 3u);
}

// --- fault model ---

TEST(TransportFaultModelTest, ScheduleIsAPureFunctionOfTheAddress) {
  Result<TransportFaultSpec> spec = TransportFaultSpec::Parse(
      "drop=0.3,corrupt=0.2,duplicate=0.2,seed=11");
  ASSERT_TRUE(spec.ok());
  TransportFaultModel a(*spec);
  TransportFaultModel b(*spec);
  for (int64_t round = 1; round <= 3; ++round) {
    for (int64_t client = 0; client < 4; ++client) {
      for (uint32_t seq = 0; seq < 3; ++seq) {
        for (int64_t attempt = 0; attempt < 4; ++attempt) {
          for (Direction dir : {Direction::kDownlink, Direction::kUplink}) {
            EXPECT_EQ(a.Decide(dir, round, round, client, seq, attempt),
                      b.Decide(dir, round, round, client, seq, attempt));
            EXPECT_EQ(a.BackoffUnits(dir, round, round, client, seq, attempt),
                      b.BackoffUnits(dir, round, round, client, seq, attempt));
          }
        }
      }
    }
  }
}

TEST(TransportFaultModelTest, DirectionsDrawIndependentFates) {
  Result<TransportFaultSpec> spec =
      TransportFaultSpec::Parse("drop=0.5,seed=4");
  ASSERT_TRUE(spec.ok());
  TransportFaultModel model(*spec);
  bool differs = false;
  for (int64_t round = 1; round <= 20 && !differs; ++round) {
    differs = model.Decide(Direction::kDownlink, round, 1, 0, 0, 0) !=
              model.Decide(Direction::kUplink, round, 1, 0, 0, 0);
  }
  EXPECT_TRUE(differs) << "downlink and uplink share a fault stream";
}

TEST(TransportFaultModelTest, AttemptAtBudgetIsForcedClean) {
  Result<TransportFaultSpec> spec =
      TransportFaultSpec::Parse("drop=1.0,max_retries=3");
  ASSERT_TRUE(spec.ok());
  TransportFaultModel model(*spec);
  for (int64_t attempt = 0; attempt < 3; ++attempt) {
    EXPECT_EQ(model.Decide(Direction::kUplink, 1, 1, 0, 0, attempt),
              FaultAction::kDrop);
  }
  EXPECT_EQ(model.Decide(Direction::kUplink, 1, 1, 0, 0, 3),
            FaultAction::kNone);
}

TEST(TransportFaultModelTest, DisabledSpecNeverFaults) {
  TransportFaultModel model(TransportFaultSpec{});
  for (int64_t attempt = 0; attempt < 4; ++attempt) {
    EXPECT_EQ(model.Decide(Direction::kDownlink, 1, 1, 0, 0, attempt),
              FaultAction::kNone);
  }
}

TEST(TransportFaultModelTest, BackoffGrowsAndIsCapped) {
  Result<TransportFaultSpec> spec = TransportFaultSpec::Parse(
      "drop=0.5,backoff_base=2,backoff_cap=16,seed=1");
  ASSERT_TRUE(spec.ok());
  TransportFaultModel model(*spec);
  for (int64_t attempt = 0; attempt < 40; ++attempt) {
    const int64_t units =
        model.BackoffUnits(Direction::kUplink, 1, 1, 0, 0, attempt);
    // min(cap, base << attempt) <= units < that + base (jitter).
    int64_t wait = int64_t{2} << std::min<int64_t>(attempt, 10);
    if (wait > 16 || wait <= 0) wait = 16;
    EXPECT_GE(units, wait) << "attempt " << attempt;
    EXPECT_LT(units, wait + 2) << "attempt " << attempt;
  }
}

// --- reliable channel ---

MessageAddress Address(Direction dir, int64_t round, uint32_t seq) {
  MessageAddress a;
  a.direction = dir;
  a.round = round;
  a.iteration = round;
  a.client = 1;
  a.seq = seq;
  return a;
}

TEST(ReliableChannelTest, CleanWireDeliversFirstTry) {
  LocalTransport wire;
  ReliableChannel channel(&wire, TransportFaultSpec{});
  Result<transport::Delivery> d = channel.Deliver(
      Address(Direction::kDownlink, 1, 0), MessageType::kModelBroadcast,
      "payload");
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->message.payload, "payload");
  EXPECT_EQ(d->payload_bytes, 7);
  EXPECT_EQ(d->retransmits, 0);
  EXPECT_FALSE(d->forced);
  EXPECT_EQ(channel.stats().messages, 1);
  EXPECT_EQ(channel.stats().attempts, 1);
  EXPECT_EQ(channel.stats().retransmits, 0);
}

TEST(ReliableChannelTest, LossyWireStillDeliversTheExactPayload) {
  Result<TransportFaultSpec> spec = TransportFaultSpec::Parse(
      "drop=0.3,corrupt=0.15,truncate=0.1,duplicate=0.1,delay=0.1,seed=9");
  ASSERT_TRUE(spec.ok());
  LocalTransport wire;
  ReliableChannel channel(&wire, *spec);
  for (int64_t round = 1; round <= 30; ++round) {
    const std::string payload = "round-" + std::to_string(round) + "-data";
    for (uint32_t seq = 0; seq < 3; ++seq) {
      Result<transport::Delivery> d =
          channel.Deliver(Address(Direction::kUplink, round, seq),
                          MessageType::kModelUpdate, payload);
      ASSERT_TRUE(d.ok()) << d.status().ToString();
      EXPECT_EQ(d->message.payload, payload)
          << "payload corrupted at round " << round << " seq " << seq;
    }
  }
  const ChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.messages, 90);
  EXPECT_GT(stats.retransmits, 0);
  EXPECT_GT(stats.retransmit_bytes, 0);
  EXPECT_GT(stats.crc_rejects, 0) << "no corruption was ever injected";
  EXPECT_GT(stats.truncation_rejects, 0) << "no truncation was injected";
  EXPECT_GT(stats.duplicates_discarded, 0) << "no duplicate was discarded";
  EXPECT_GT(stats.timeouts, 0) << "no drop ever timed out";
  EXPECT_GT(stats.backoff_units, 0);
}

TEST(ReliableChannelTest, TwoChannelsProduceIdenticalLedgers) {
  Result<TransportFaultSpec> spec = TransportFaultSpec::Parse(
      "drop=0.25,corrupt=0.1,duplicate=0.1,seed=21");
  ASSERT_TRUE(spec.ok());
  LocalTransport wire_a, wire_b;
  ReliableChannel a(&wire_a, *spec);
  ReliableChannel b(&wire_b, *spec);
  for (int64_t round = 1; round <= 20; ++round) {
    for (ReliableChannel* c : {&a, &b}) {
      Result<transport::Delivery> d =
          c->Deliver(Address(Direction::kDownlink, round, 0),
                     MessageType::kModelBroadcast, "x");
      ASSERT_TRUE(d.ok());
    }
  }
  EXPECT_EQ(a.stats().attempts, b.stats().attempts);
  EXPECT_EQ(a.stats().retransmits, b.stats().retransmits);
  EXPECT_EQ(a.stats().retransmit_bytes, b.stats().retransmit_bytes);
  EXPECT_EQ(a.stats().backoff_units, b.stats().backoff_units);
  EXPECT_EQ(a.stats().crc_rejects, b.stats().crc_rejects);
  EXPECT_EQ(a.stats().duplicates_discarded, b.stats().duplicates_discarded);
}

TEST(ReliableChannelTest, TotalLossDegradesIntoForcedDelivery) {
  Result<TransportFaultSpec> spec =
      TransportFaultSpec::Parse("drop=1.0,max_retries=3");
  ASSERT_TRUE(spec.ok());
  LocalTransport wire;
  ReliableChannel channel(&wire, *spec);
  Result<transport::Delivery> d = channel.Deliver(
      Address(Direction::kUplink, 1, 0), MessageType::kModelUpdate, "vital");
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->message.payload, "vital");
  EXPECT_TRUE(d->forced);
  EXPECT_EQ(d->retransmits, 3);
  EXPECT_EQ(channel.stats().forced_deliveries, 1);
  EXPECT_EQ(channel.stats().timeouts, 3);
}

TEST(ReliableChannelTest, ModelDeliveryIsBitExactUnderFaults) {
  Result<TransportFaultSpec> spec = TransportFaultSpec::Parse(
      "drop=0.3,corrupt=0.2,duplicate=0.2,seed=5");
  ASSERT_TRUE(spec.ok());
  LocalTransport wire;
  ReliableChannel channel(&wire, *spec);
  Tensor params({4}, {0.125f, -7.5f, 1.0e-20f, 42.0f});
  const EncodedModel encoded(params);
  for (int64_t round = 1; round <= 10; ++round) {
    Result<transport::ModelDelivery> d = channel.DeliverModel(
        Address(Direction::kDownlink, round, 0), encoded);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    EXPECT_TRUE(d->params.BitwiseEquals(params)) << "round " << round;
    EXPECT_EQ(d->payload_bytes, 16);
  }
}

TEST(ReliableChannelTest, ParticipationDeliveryRoundTrips) {
  LocalTransport wire;
  ReliableChannel channel(&wire, TransportFaultSpec{});
  const std::vector<int64_t> multiset = {2, 0, 2, 4};
  Result<std::vector<int64_t>> back = channel.DeliverParticipation(
      Address(Direction::kDownlink, 1, 0), multiset);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, multiset);
}

}  // namespace
}  // namespace fats
