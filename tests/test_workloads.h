// Shared tiny workloads for trainer / unlearner tests.

#ifndef FATS_TESTS_TEST_WORKLOADS_H_
#define FATS_TESTS_TEST_WORKLOADS_H_

#include <cstdint>

#include "core/fats_config.h"
#include "data/federated_dataset.h"
#include "data/paper_configs.h"
#include "data/synthetic_image.h"
#include "nn/model_zoo.h"

namespace fats {

/// A tiny separable image workload: `clients` clients with `n` samples each
/// of a `classes`-way Gaussian-cluster task in `dim` dimensions.
inline FederatedDataset TinyImageData(int64_t clients, int64_t n,
                                      int64_t classes = 2, int64_t dim = 4,
                                      uint64_t seed = 17) {
  SyntheticImageConfig config;
  config.num_classes = classes;
  config.feature_dim = dim;
  config.prototype_scale = 2.0;
  config.noise_stddev = 0.4;
  config.seed = seed;
  SyntheticImageGenerator gen(config);
  std::vector<InMemoryDataset> shards;
  for (int64_t k = 0; k < clients; ++k) {
    shards.push_back(
        gen.Generate(n, {}, -1, static_cast<uint64_t>(k) + 100));
  }
  InMemoryDataset test = gen.Generate(60, {}, -1, 999);
  return FederatedDataset(std::move(shards), std::move(test));
}

inline ModelSpec TinyModelSpec(int64_t classes = 2, int64_t dim = 4) {
  ModelSpec spec;
  spec.kind = ModelKind::kLogReg;
  spec.input_dim = dim;
  spec.num_classes = classes;
  return spec;
}

/// FatsConfig sized for the TinyImageData workload. rho values are chosen
/// so K and b derive to small integers.
inline FatsConfig TinyFatsConfig(int64_t clients, int64_t n,
                                 int64_t rounds = 4, int64_t e = 3,
                                 double rho_s = 0.5, double rho_c = 0.5,
                                 uint64_t seed = 7) {
  FatsConfig config;
  config.clients_m = clients;
  config.samples_per_client_n = n;
  config.rounds_r = rounds;
  config.local_iters_e = e;
  config.rho_s = rho_s;
  config.rho_c = rho_c;
  config.learning_rate = 0.1;
  config.seed = seed;
  return config;
}

}  // namespace fats

#endif  // FATS_TESTS_TEST_WORKLOADS_H_
