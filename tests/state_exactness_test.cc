// State-tiering exactness: the trainer's observable trace — global
// parameters, every recorded selection / minibatch / model, the round log,
// the communication counters — must be bitwise identical whether history
// lives in flat resident blocks, compressed sealed blobs, or mmap-backed
// spill segments. The storage knobs in FatsConfig are execution knobs like
// num_threads (DESIGN.md §7.8): they bound memory, never values. This
// includes the hard part, unlearning: truncation + replay re-reads cold
// history and substitutes minibatches inside sealed blocks, and the result
// must still match the resident run bit for bit.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/client_unlearner.h"
#include "core/fats_trainer.h"
#include "core/sample_unlearner.h"
#include "test_workloads.h"

namespace fats {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

struct TrainerRun {
  FederatedDataset data;
  FatsConfig config;
  std::unique_ptr<FatsTrainer> trainer;
};

// Tiny block / cache budgets so a 4-round run seals, spills, and evicts:
// with 2 iterations per block and one resident sealed blob, most of the
// history is cold by the time replay reads it back.
void ApplyTinyStateBudgets(FatsConfig* config, const std::string& spill_dir) {
  config->state_spill_dir = spill_dir;
  config->state_block_iters = 2;
  config->state_resident_sealed_blocks = 1;
  config->state_decoded_cache_blocks = 2;
}

TrainerRun MakeRun(const std::string& spill_dir) {
  TrainerRun run;
  run.data = TinyImageData(6, 10);
  run.config = TinyFatsConfig(6, 10, /*rounds=*/4, /*e=*/2);
  if (!spill_dir.empty()) ApplyTinyStateBudgets(&run.config, spill_dir);
  run.trainer =
      std::make_unique<FatsTrainer>(TinyModelSpec(), run.config, &run.data);
  return run;
}

void ExpectIdenticalState(FatsTrainer* resident, FatsTrainer* tiered) {
  EXPECT_TRUE(
      resident->global_params().BitwiseEquals(tiered->global_params()))
      << "global parameters diverged";
  EXPECT_EQ(resident->trained_through(), tiered->trained_through());
  EXPECT_EQ(resident->local_iterations_executed(),
            tiered->local_iterations_executed());
  EXPECT_EQ(resident->generation(), tiered->generation());

  const StateStore& a = resident->store();
  const StateStore& b = tiered->store();
  ASSERT_EQ(a.SelectionRounds(), b.SelectionRounds());
  for (int64_t round : a.SelectionRounds()) {
    EXPECT_EQ(*a.GetClientSelection(round), *b.GetClientSelection(round))
        << "selection of round " << round;
  }
  ASSERT_EQ(a.GlobalModelRounds(), b.GlobalModelRounds());
  for (int64_t round : a.GlobalModelRounds()) {
    EXPECT_TRUE(
        a.GetGlobalModel(round)->BitwiseEquals(*b.GetGlobalModel(round)))
        << "global model of round " << round;
  }
  ASSERT_EQ(a.MinibatchKeys(), b.MinibatchKeys());
  for (const auto& [iter, client] : a.MinibatchKeys()) {
    EXPECT_EQ(*a.GetMinibatch(iter, client), *b.GetMinibatch(iter, client))
        << "minibatch at t=" << iter << " client=" << client;
  }
  ASSERT_EQ(a.LocalModelKeys(), b.LocalModelKeys());
  for (const auto& [iter, client] : a.LocalModelKeys()) {
    EXPECT_TRUE(a.GetLocalModel(iter, client)
                    ->BitwiseEquals(*b.GetLocalModel(iter, client)))
        << "local model at t=" << iter << " client=" << client;
  }
  EXPECT_TRUE(a.IndicesConsistentWithRecords());
  EXPECT_TRUE(b.IndicesConsistentWithRecords());

  const auto& log_a = resident->log().records();
  const auto& log_b = tiered->log().records();
  ASSERT_EQ(log_a.size(), log_b.size());
  for (size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_EQ(log_a[i].round, log_b[i].round);
    // Exact double equality on purpose: the tier a record is read from must
    // not perturb a single bit of the replayed arithmetic.
    EXPECT_EQ(log_a[i].test_accuracy, log_b[i].test_accuracy);
    EXPECT_EQ(log_a[i].mean_local_loss, log_b[i].mean_local_loss);
    EXPECT_EQ(log_a[i].recomputation, log_b[i].recomputation);
  }

  EXPECT_EQ(resident->comm_stats().rounds(), tiered->comm_stats().rounds());
  EXPECT_EQ(resident->comm_stats().uplink_bytes(),
            tiered->comm_stats().uplink_bytes());
  EXPECT_EQ(resident->comm_stats().downlink_bytes(),
            tiered->comm_stats().downlink_bytes());
  EXPECT_EQ(resident->comm_stats().messages(), tiered->comm_stats().messages());
}

TEST(StateExactnessTest, TrainingIsBitIdenticalWithSpill) {
  TrainerRun resident = MakeRun("");
  TrainerRun tiered = MakeRun(FreshDir("state_exact_train"));
  resident.trainer->Train();
  tiered.trainer->Train();
  // The tiered run must actually have exercised the disk tier, or this test
  // proves nothing.
  EXPECT_GT(tiered.trainer->store().SpilledBytes(), 0);
  EXPECT_EQ(resident.trainer->store().SpilledBytes(), 0);
  ExpectIdenticalState(resident.trainer.get(), tiered.trainer.get());
}

TEST(StateExactnessTest, TrainingIsBitIdenticalCompressedOnly) {
  // Tiny budgets but no spill dir: sealed blobs stay resident compressed.
  TrainerRun resident = MakeRun("");
  TrainerRun compressed = MakeRun("");
  ApplyTinyStateBudgets(&compressed.config, "");
  compressed.trainer = std::make_unique<FatsTrainer>(
      TinyModelSpec(), compressed.config, &compressed.data);
  resident.trainer->Train();
  compressed.trainer->Train();
  EXPECT_EQ(compressed.trainer->store().SpilledBytes(), 0);
  ExpectIdenticalState(resident.trainer.get(), compressed.trainer.get());
}

TEST(StateExactnessTest, SampleUnlearningReplayIsBitIdentical) {
  TrainerRun resident = MakeRun("");
  TrainerRun tiered = MakeRun(FreshDir("state_exact_sample"));
  resident.trainer->Train();
  tiered.trainer->Train();

  // A spread of targets so the truncation point lands in cold history and
  // the replay substitutes minibatches inside reopened blocks.
  const std::vector<SampleRef> targets = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const int64_t t_max = resident.trainer->trained_through();
  SampleUnlearner unlearner_r(resident.trainer.get());
  SampleUnlearner unlearner_t(tiered.trainer.get());
  auto outcome_r = unlearner_r.UnlearnBatch(targets, t_max);
  auto outcome_t = unlearner_t.UnlearnBatch(targets, t_max);
  ASSERT_TRUE(outcome_r.ok()) << outcome_r.status().message();
  ASSERT_TRUE(outcome_t.ok()) << outcome_t.status().message();
  EXPECT_EQ(outcome_r->recomputed, outcome_t->recomputed);
  EXPECT_EQ(outcome_r->restart_iteration, outcome_t->restart_iteration);
  ExpectIdenticalState(resident.trainer.get(), tiered.trainer.get());
}

TEST(StateExactnessTest, ClientUnlearningRerunIsBitIdentical) {
  TrainerRun resident = MakeRun("");
  TrainerRun tiered = MakeRun(FreshDir("state_exact_client"));
  resident.trainer->Train();
  tiered.trainer->Train();

  const std::vector<int64_t>* first_selection =
      resident.trainer->store().GetClientSelection(1);
  ASSERT_NE(first_selection, nullptr);
  ASSERT_FALSE(first_selection->empty());
  const int64_t target = first_selection->front();

  const int64_t t_max = resident.trainer->trained_through();
  ClientUnlearner unlearner_r(resident.trainer.get());
  ClientUnlearner unlearner_t(tiered.trainer.get());
  auto outcome_r = unlearner_r.Unlearn(target, t_max);
  auto outcome_t = unlearner_t.Unlearn(target, t_max);
  ASSERT_TRUE(outcome_r.ok()) << outcome_r.status().message();
  ASSERT_TRUE(outcome_t.ok()) << outcome_t.status().message();
  ASSERT_TRUE(outcome_r->recomputed);
  EXPECT_EQ(outcome_r->recomputed, outcome_t->recomputed);
  ExpectIdenticalState(resident.trainer.get(), tiered.trainer.get());
}

TEST(StateExactnessTest, PauseAndResumeIsBitIdenticalWithSpill) {
  // Pausing mid-training makes the resumed rounds re-enter via the store's
  // recorded state, some of which is already cold by then.
  TrainerRun resident = MakeRun("");
  TrainerRun tiered = MakeRun(FreshDir("state_exact_resume"));
  resident.trainer->TrainUntil(4);
  tiered.trainer->TrainUntil(4);
  ExpectIdenticalState(resident.trainer.get(), tiered.trainer.get());
  resident.trainer->TrainUntil(8);
  tiered.trainer->TrainUntil(8);
  ExpectIdenticalState(resident.trainer.get(), tiered.trainer.get());
}

TEST(StateExactnessTest, ParallelAndTieredComposeBitIdentically) {
  // Tiering and the deterministic parallel runner are independent knobs;
  // turning both on at once must still reproduce the serial resident trace.
  TrainerRun resident = MakeRun("");
  TrainerRun both = MakeRun(FreshDir("state_exact_parallel"));
  both.config.num_threads = 4;
  both.trainer =
      std::make_unique<FatsTrainer>(TinyModelSpec(), both.config, &both.data);
  resident.trainer->Train();
  both.trainer->Train();
  ExpectIdenticalState(resident.trainer.get(), both.trainer.get());
}

}  // namespace
}  // namespace fats
