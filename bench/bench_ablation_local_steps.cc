// Ablation: communication efficiency of local SGD with periodic averaging
// (the paper's E/T trade-off, Remark 2(III)).
//
// At a fixed iteration budget T, the number of communication rounds is
// R = T/E. Sweeping E at constant (ρ_S, ρ_C) holds the stability operating
// point fixed; K and b re-derive per Algorithm 1 (K grows with E, b
// shrinks). A neat consequence of the derivation: K·R = ρ_C·M is invariant
// in E, so the total *bytes* moved stay constant (up to integer rounding of
// K) — what local SGD buys is a 1/E reduction in synchronization ROUNDS,
// which dominate latency in real federations. The accuracy cost of larger
// E is the O(E/T) term of Theorem 2, and condition (7) caps E for a given
// heterogeneity λ.
//
// Expected shape: rounds fall as 1/E at near-flat accuracy for moderate E;
// pushing E towards T costs accuracy (the divergence discussion after
// Lemma 2); bytes stay ~constant.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/tv_stability.h"
#include "util/flags.h"

namespace fats {
namespace {

DatasetProfile SweepProfile() {
  DatasetProfile profile = ScaledProfile("mnist").value();
  profile.clients_m = 60;
  profile.samples_per_client_n = 48;
  profile.test_size = 240;
  return profile;
}

}  // namespace
}  // namespace fats

int main(int argc, char** argv) {
  using namespace fats;  // NOLINT
  FlagParser flags;
  int64_t* total_iters = flags.AddInt("total_iters", 60,
                                      "fixed iteration budget T");
  int64_t* trials = flags.AddInt("trials", 4, "seeds averaged per point");
  Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  DatasetProfile profile = SweepProfile();
  CsvWriter csv(&std::cout, "# CSV,");
  csv.WriteHeader({"local_iters_e", "rounds_r", "k", "b", "accuracy",
                   "total_bytes", "rounds_vs_e1"});

  bench::PrintHeader(StrFormat(
      "Ablation: communication vs local steps at fixed T=%lld "
      "(rho_s=0.25, rho_c=0.5)", static_cast<long long>(*total_iters)));
  std::printf("%6s %6s %4s %4s %10s %14s %12s\n", "E", "R", "K", "b",
              "accuracy", "total bytes", "rounds/E=1");

  int64_t baseline_rounds = 0;
  for (int64_t e : {1, 2, 3, 5, 10, 20}) {
    if (*total_iters % e != 0) continue;
    DatasetProfile point = profile;
    point.local_iters_e = e;
    point.rounds_r = *total_iters / e;

    FatsConfig probe = FatsConfig::FromProfile(point);
    probe.rho_s = 0.25;
    probe.rho_c = 0.5;
    if (!probe.Validate().ok()) {
      std::printf("%6lld infeasible (%s)\n", static_cast<long long>(e),
                  probe.Validate().ToString().c_str());
      continue;
    }

    double accuracy_sum = 0.0;
    int64_t bytes = 0;
    int64_t k = 0;
    int64_t b = 0;
    for (int64_t trial = 0; trial < *trials; ++trial) {
      FederatedDataset data =
          BuildFederatedData(point, 70 + static_cast<uint64_t>(trial));
      FatsConfig config = probe;
      config.seed = 70 + static_cast<uint64_t>(trial);
      FatsTrainer trainer(point.model, config, &data);
      trainer.Train();
      accuracy_sum += trainer.EvaluateTestAccuracy();
      bytes = trainer.comm_stats().total_bytes();
      k = trainer.K();
      b = trainer.b();
    }
    const double accuracy = accuracy_sum / *trials;
    if (e == 1) baseline_rounds = point.rounds_r;
    const double ratio =
        baseline_rounds > 0
            ? static_cast<double>(point.rounds_r) / baseline_rounds
            : 1.0;
    std::printf("%6lld %6lld %4lld %4lld %10.3f %14lld %11.2fx\n",
                static_cast<long long>(e),
                static_cast<long long>(point.rounds_r),
                static_cast<long long>(k), static_cast<long long>(b),
                accuracy, static_cast<long long>(bytes), ratio);
    csv.WriteRow({std::to_string(e), std::to_string(point.rounds_r),
                  std::to_string(k), std::to_string(b),
                  FormatDouble(accuracy, 4), std::to_string(bytes),
                  FormatDouble(ratio, 4)});
  }
  std::printf(
      "\nK*R = rho_C*M is invariant in E, so bytes stay ~constant; local SGD"
      "\nbuys a 1/E cut in synchronization rounds at an O(E/T) accuracy cost"
      "\n(Theorem 2), with condition (7) capping E.\n");
  return 0;
}
