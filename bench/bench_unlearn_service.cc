// Benchmarks (google-benchmark) for the unlearning request service: O(1)
// triage against the StateStore's inverted participation index, queue
// throughput at 10^5 requests, and the replay amortization of coalescing.
//
// Feeds the bench-regression smoke: tools/ci.sh runs this binary with
// --benchmark_out=BENCH_unlearn_current.json and tools/bench_check compares
// the result against the checked-in BENCH_unlearn.json baseline.
//
// BM_TriageIndexed vs BM_TriageScan is the acceptance pair: the indexed
// triage must stay flat as T grows while the pre-index scan (reimplemented
// here over the store's public record enumeration) grows linearly.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/unlearning_service.h"
#include "data/paper_configs.h"

namespace fats {
namespace {

struct Trained {
  FederatedDataset data;
  FatsConfig config;
  std::unique_ptr<FatsTrainer> trainer;
};

DatasetProfile BenchProfile(int64_t clients, int64_t n, int64_t rounds,
                            int64_t e) {
  DatasetProfile profile = ScaledProfile("mnist").value();
  profile.clients_m = clients;
  profile.samples_per_client_n = n;
  profile.rounds_r = rounds;
  profile.local_iters_e = e;
  profile.test_size = 64;
  return profile;
}

std::unique_ptr<Trained> Train(int64_t clients, int64_t n, int64_t rounds,
                               int64_t e, int64_t k, int64_t b) {
  auto t = std::make_unique<Trained>();
  DatasetProfile profile = BenchProfile(clients, n, rounds, e);
  t->data = BuildFederatedData(profile, 11);
  t->config = bench::FatsConfigWithKB(profile, k, b, 11);
  t->trainer =
      std::make_unique<FatsTrainer>(profile.model, t->config, &t->data);
  t->trainer->Train();
  return t;
}

/// One trained harness per round count, trained once and shared by the
/// read-only triage benchmarks.
Trained& CachedTrained(int64_t rounds) {
  static std::map<int64_t, std::unique_ptr<Trained>> cache;
  std::unique_ptr<Trained>& slot = cache[rounds];
  if (slot == nullptr) slot = Train(/*clients=*/40, /*n=*/40, rounds,
                                    /*e=*/2, /*k=*/8, /*b=*/4);
  return *slot;
}

std::vector<UnlearningRequest> SampleRequests(const Trained& t) {
  std::vector<UnlearningRequest> requests;
  for (int64_t client = 0; client < t.data.num_clients(); ++client) {
    for (int64_t index = 0; index < t.data.samples_of(client); ++index) {
      UnlearningRequest request;
      request.kind = UnlearningRequest::Kind::kSample;
      request.sample = {client, index};
      request.request_iter = t.config.total_iters_t();
      requests.push_back(request);
    }
  }
  return requests;
}

/// The pre-index triage: linear scan of every recorded mini-batch for the
/// sample, exactly what EarliestSampleUse did before the inverted index.
int64_t ScanEarliestSampleUse(
    const StateStore& store,
    const std::vector<std::pair<int64_t, int64_t>>& keys,
    const SampleRef& ref) {
  int64_t earliest = -1;
  for (const auto& [iter, client] : keys) {
    if (client != ref.client) continue;
    const std::vector<int64_t>* batch = store.GetMinibatch(iter, client);
    if (batch == nullptr) continue;
    if (std::find(batch->begin(), batch->end(), ref.index) != batch->end()) {
      if (earliest == -1 || iter < earliest) earliest = iter;
    }
  }
  return earliest;
}

void BM_TriageIndexed(benchmark::State& state) {
  Trained& t = CachedTrained(state.range(0));
  UnlearningService service(t.trainer.get());
  const std::vector<UnlearningRequest> requests = SampleRequests(t);
  size_t next = 0;
  for (auto _ : state) {
    UnlearningService::Triage triage =
        service.TriageRequest(requests[next++ % requests.size()]);
    benchmark::DoNotOptimize(triage.restart_iteration);
  }
  state.counters["T"] =
      static_cast<double>(t.config.total_iters_t());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TriageIndexed)->Arg(8)->Arg(32)->Arg(128);

void BM_TriageScan(benchmark::State& state) {
  Trained& t = CachedTrained(state.range(0));
  const std::vector<UnlearningRequest> requests = SampleRequests(t);
  // Hoist the key enumeration: the old path walked the live record map, so
  // charging the per-call vector build to the scan would overstate it.
  const std::vector<std::pair<int64_t, int64_t>> keys =
      t.trainer->store().MinibatchKeys();
  size_t next = 0;
  for (auto _ : state) {
    const UnlearningRequest& request = requests[next++ % requests.size()];
    benchmark::DoNotOptimize(
        ScanEarliestSampleUse(t.trainer->store(), keys, request.sample));
  }
  state.counters["T"] =
      static_cast<double>(t.config.total_iters_t());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TriageScan)->Arg(8)->Arg(32)->Arg(128);

// 10^5 queued sample deletions (250 clients x 400 of their 500 samples),
// submitted with O(1) validation and flushed as ONE transactional batch
// with at most one replay. Counters report the coalescing factor
// (requests per flush) and the replay amortization (iterations a
// sequential pass would have replayed vs what the flush replayed).
void BM_ServiceStream100k(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    std::unique_ptr<Trained> t = Train(/*clients=*/250, /*n=*/500,
                                       /*rounds=*/4, /*e=*/2, /*k=*/16,
                                       /*b=*/4);
    std::vector<UnlearningRequest> requests;
    requests.reserve(250 * 400);
    for (int64_t client = 0; client < 250; ++client) {
      for (int64_t index = 0; index < 400; ++index) {
        UnlearningRequest request;
        request.kind = UnlearningRequest::Kind::kSample;
        request.sample = {client, index};
        request.request_iter = t->config.total_iters_t();
        requests.push_back(request);
      }
    }
    UnlearningService service(t->trainer.get());
    state.ResumeTiming();
    ServiceSummary summary = service.ExecuteStream(requests).value();
    state.counters["requests"] =
        static_cast<double>(summary.totals.requests);
    state.counters["flushes"] = static_cast<double>(summary.flushes);
    state.counters["coalescing_factor"] =
        static_cast<double>(summary.totals.requests) /
        static_cast<double>(std::max<int64_t>(1, summary.flushes));
    state.counters["replayed_iters"] =
        static_cast<double>(summary.totals.replayed_iterations);
    state.counters["sequential_replayed_iters"] =
        static_cast<double>(summary.totals.sequential_replayed_iterations);
  }
  state.SetItemsProcessed(state.iterations() * 250 * 400);
}
BENCHMARK(BM_ServiceStream100k)->Unit(benchmark::kMillisecond);

// Replay amortization vs coalesce window: the same 512-request stream
// flushed every `window` requests. Larger windows -> fewer replays ->
// less total replayed work, identical final model.
void BM_FlushWindow(benchmark::State& state) {
  const int64_t window = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    std::unique_ptr<Trained> t = Train(/*clients=*/32, /*n=*/32,
                                       /*rounds=*/4, /*e=*/2, /*k=*/8,
                                       /*b=*/4);
    std::vector<UnlearningRequest> requests;
    for (int64_t client = 0; client < 32; ++client) {
      for (int64_t index = 0; index < 16; ++index) {
        UnlearningRequest request;
        request.kind = UnlearningRequest::Kind::kSample;
        request.sample = {client, index};
        request.request_iter = t->config.total_iters_t();
        requests.push_back(request);
      }
    }
    UnlearningService service(t->trainer.get());
    state.ResumeTiming();
    ServiceSummary summary = service.ExecuteStream(requests, window).value();
    state.counters["flushes"] = static_cast<double>(summary.flushes);
    state.counters["replayed_iters"] =
        static_cast<double>(summary.totals.replayed_iterations);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_FlushWindow)->Arg(1)->Arg(16)->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fats

BENCHMARK_MAIN();
