// Figure 2 (+ Figure 6): unlearning efficiency of FATS versus FRS on the
// FEMNIST-like and Shakespeare-like profiles.
//
// Top row (sample-level): fix T, E, M, N and sweep K for each mini-batch
// size b; ρ_S = b·K·T/(M·N) grows with K, so the average unlearning time
// (time steps re-computed per request) grows towards the FRS anchor.
// Bottom row (client-level): sweep K for each federation size M;
// ρ_C = K·T/(E·M).
//
// Expected shape: every FATS line sits well below the flat FRS line (= T),
// rising with K; larger b / smaller M shift lines up. Each line ends at the
// largest K with ρ <= 1.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/sample_unlearner.h"
#include "core/client_unlearner.h"
#include "core/unlearning_executor.h"
#include "util/flags.h"

namespace fats {
namespace {

DatasetProfile SweepProfile(const std::string& name) {
  DatasetProfile profile = ScaledProfile(name).value();
  // A flatter shape for the sweep: moderate rounds so each point is cheap.
  if (name == "femnist") {
    profile.clients_m = 60;
    profile.samples_per_client_n = 24;
    profile.rounds_r = 10;
    profile.local_iters_e = 4;
    profile.test_size = 160;
  } else {  // shakespeare
    profile.clients_m = 36;
    profile.samples_per_client_n = 30;
    profile.rounds_r = 6;
    profile.local_iters_e = 4;
    profile.test_size = 120;
  }
  return profile;
}

/// Mean unlearning time (time steps) over `trials` independent single
/// requests, retraining between requests so each one probes a fresh state.
double MeanUnlearningSteps(const DatasetProfile& profile,
                           const FatsConfig& base_config, bool client_level,
                           int trials, int64_t num_threads) {
  double total_steps = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    FederatedDataset data =
        BuildFederatedData(profile, 100 + static_cast<uint64_t>(trial));
    FatsConfig config = base_config;
    config.seed = 100 + static_cast<uint64_t>(trial);
    config.num_threads = num_threads;
    FatsTrainer trainer(profile.model, config, &data);
    trainer.Train();
    StreamId id;
    id.purpose = RngPurpose::kGeneric;
    id.iteration = static_cast<uint64_t>(trial);
    RngStream rng(55, id);
    if (client_level) {
      ClientUnlearner unlearner(&trainer);
      const int64_t target = PickRandomActiveClients(data, 1, &rng)[0];
      total_steps += static_cast<double>(
          unlearner.Unlearn(target, config.total_iters_t())
              .value()
              .recomputed_iterations);
    } else {
      SampleUnlearner unlearner(&trainer);
      const SampleRef target = PickRandomActiveSamples(data, 1, &rng)[0];
      total_steps += static_cast<double>(
          unlearner.Unlearn(target, config.total_iters_t())
              .value()
              .recomputed_iterations);
    }
  }
  return total_steps / trials;
}

}  // namespace
}  // namespace fats

int main(int argc, char** argv) {
  using namespace fats;  // NOLINT
  FlagParser flags;
  int64_t* trials = flags.AddInt("trials", 8, "trials per sweep point");
  int64_t* threads = flags.AddInt(
      "threads", 1,
      "worker threads for client updates (results are thread-count-"
      "invariant; only wall-clock changes)");
  Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  CsvWriter csv(&std::cout, "# CSV,");
  csv.WriteHeader({"dataset", "scenario", "sweep_param", "sweep_value", "k",
                   "rho", "method", "mean_unlearning_steps"});

  for (const std::string name : {"femnist", "shakespeare"}) {
    DatasetProfile profile = SweepProfile(name);
    const int64_t t_total = profile.total_iters_t();

    // ---- sample-level: lines per b, x-axis K ----
    bench::PrintHeader("Figure 2 (top) - " + name +
                       " sample-level: unlearning time vs K per b "
                       "(FRS anchor = " + std::to_string(t_total) + " steps)");
    for (int64_t b : {2, 4, 6}) {
      std::string line = StrFormat("  b=%lld:", static_cast<long long>(b));
      for (int64_t k = 1;; ++k) {
        FatsConfig config = bench::FatsConfigWithKB(profile, k, b, 1);
        if (config.rho_s > 1.0 || config.rho_c > 1.0 ||
            !config.Validate().ok()) {
          break;
        }
        const double steps = MeanUnlearningSteps(
            profile, config, /*client_level=*/false,
            static_cast<int>(*trials), *threads);
        line += StrFormat(" K=%lld:%.1f", static_cast<long long>(k), steps);
        csv.WriteRow({name, "sample", "b", std::to_string(b),
                      std::to_string(k), FormatDouble(config.rho_s, 4),
                      "FATS", FormatDouble(steps, 2)});
        csv.WriteRow({name, "sample", "b", std::to_string(b),
                      std::to_string(k), FormatDouble(config.rho_s, 4),
                      "FRS", std::to_string(t_total)});
      }
      std::printf("%s  | FRS: %lld\n", line.c_str(),
                  static_cast<long long>(t_total));
    }

    // ---- client-level: lines per M, x-axis K ----
    bench::PrintHeader("Figure 2 (bottom) - " + name +
                       " client-level: unlearning time vs K per M");
    for (int64_t m_scale : {1, 2, 3}) {
      DatasetProfile sized = profile;
      sized.clients_m = profile.clients_m * m_scale / 2 +
                        profile.clients_m / 2;  // 1x, 1.5x, 2x
      std::string line =
          StrFormat("  M=%lld:", static_cast<long long>(sized.clients_m));
      for (int64_t k = 1;; ++k) {
        FatsConfig config =
            bench::FatsConfigWithKB(sized, k, sized.batch_b, 1);
        if (config.rho_c > 1.0 || config.rho_s > 1.0 ||
            !config.Validate().ok()) {
          break;
        }
        const double steps = MeanUnlearningSteps(
            sized, config, /*client_level=*/true, static_cast<int>(*trials),
            *threads);
        line += StrFormat(" K=%lld:%.1f", static_cast<long long>(k), steps);
        csv.WriteRow({name, "client", "M", std::to_string(sized.clients_m),
                      std::to_string(k), FormatDouble(config.rho_c, 4),
                      "FATS", FormatDouble(steps, 2)});
        csv.WriteRow({name, "client", "M", std::to_string(sized.clients_m),
                      std::to_string(k), FormatDouble(config.rho_c, 4),
                      "FRS", std::to_string(t_total)});
      }
      std::printf("%s  | FRS: %lld\n", line.c_str(),
                  static_cast<long long>(t_total));
    }
  }
  return 0;
}
