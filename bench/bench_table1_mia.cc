// Table 1: membership-inference attack (MIA) on the final unlearned models
// of FRS, FR², and FATS across the six dataset profiles.
//
// Protocol: train, delete a batch of samples with each method, then attack
// the unlearned model with the deleted samples as the "member" pool and a
// fresh holdout as the "non-member" pool; 100 attack repetitions, mean±std.
//
// Expected shape: FATS and FRS (both exact) hover at ≈50% accuracy and
// precision — the attack cannot beat coin flipping. FR² (approximate) may
// deviate and show unstable precision, as the paper reports on FEMNIST.

#include <cmath>
#include <cstdio>
#include <map>
#include <iostream>

#include "attack/mia.h"
#include "baselines/fr2.h"
#include "baselines/frs.h"
#include "bench_util.h"
#include "core/unlearning_executor.h"
#include "util/flags.h"

namespace fats {
namespace {

using bench::FedAvgOptionsFromProfile;

Batch GatherSamples(const FederatedDataset& data,
                    const std::vector<SampleRef>& refs) {
  InMemoryDataset pool;
  for (const SampleRef& ref : refs) {
    Batch one = data.client_data(ref.client).GatherBatch({ref.index});
    pool.Append(InMemoryDataset(one.inputs, one.labels, data.num_classes()));
  }
  return pool.AsBatch();
}

/// Fresh never-trained examples drawn from the *same clients* as the
/// deleted targets, so the member and non-member pools are identically
/// distributed and the attack can only exploit genuine memorization.
Batch HoldoutPool(const DatasetProfile& profile,
                  const std::vector<SampleRef>& targets, uint64_t seed) {
  InMemoryDataset pool;
  for (const SampleRef& ref : targets) {
    pool.Append(GenerateClientHoldout(profile, seed, ref.client, 1));
  }
  return pool.AsBatch();
}

struct AttackRow {
  MiaResult result;
  double final_accuracy = 0.0;
};

AttackRow AttackFats(const DatasetProfile& profile,
                     const std::vector<SampleRef>& targets,
                     const Batch& member_pool, const Batch& nonmember_pool,
                     const MiaOptions& mia, uint64_t seed) {
  FederatedDataset data = BuildFederatedData(profile, seed);
  FatsConfig config = FatsConfig::FromProfile(profile);
  config.seed = seed;
  FatsTrainer trainer(profile.model, config, &data);
  trainer.Train();
  UnlearningExecutor executor(&trainer);
  FATS_CHECK(executor.ExecuteSampleBatch(targets, config.total_iters_t())
                 .ok());
  AttackRow row;
  row.result = RunMembershipInference(trainer.model(), member_pool,
                                      nonmember_pool, mia)
                   .value();
  row.final_accuracy = trainer.EvaluateTestAccuracy();
  return row;
}

AttackRow AttackFrs(const DatasetProfile& profile,
                    const std::vector<SampleRef>& targets,
                    const Batch& member_pool, const Batch& nonmember_pool,
                    const MiaOptions& mia, uint64_t seed) {
  FederatedDataset data = BuildFederatedData(profile, seed);
  FedAvgTrainer trainer(profile.model,
                        FedAvgOptionsFromProfile(profile, seed), &data);
  trainer.RunRounds(profile.rounds_r);
  FrsUnlearner unlearner(&trainer, &data);
  FATS_CHECK(unlearner.UnlearnSamples(targets, profile.rounds_r).ok());
  AttackRow row;
  row.result = RunMembershipInference(trainer.model(), member_pool,
                                      nonmember_pool, mia)
                   .value();
  row.final_accuracy = trainer.EvaluateTestAccuracy();
  return row;
}

AttackRow AttackFr2(const DatasetProfile& profile,
                    const std::vector<SampleRef>& targets,
                    const Batch& member_pool, const Batch& nonmember_pool,
                    const MiaOptions& mia, uint64_t seed) {
  FederatedDataset data = BuildFederatedData(profile, seed);
  FedAvgTrainer trainer(profile.model,
                        FedAvgOptionsFromProfile(profile, seed), &data);
  trainer.RunRounds(profile.rounds_r);
  Fr2Options options;
  options.recovery_rounds = std::max<int64_t>(2, profile.rounds_r / 4);
  Fr2Unlearner unlearner(&trainer, &data, options);
  FATS_CHECK(unlearner.UnlearnSamples(targets).ok());
  AttackRow row;
  row.result = RunMembershipInference(trainer.model(), member_pool,
                                      nonmember_pool, mia)
                   .value();
  row.final_accuracy = trainer.EvaluateTestAccuracy();
  return row;
}

}  // namespace
}  // namespace fats

int main(int argc, char** argv) {
  using namespace fats;  // NOLINT
  FlagParser flags;
  int64_t* trials = flags.AddInt("trials", 100, "MIA repetitions");
  int64_t* num_targets = flags.AddInt("targets", 16,
                                      "deleted samples per run");
  int64_t* seed = flags.AddInt("seed", 3, "base workload seed");
  int64_t* workloads =
      flags.AddInt("workloads", 5, "independent workloads averaged per cell");
  Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  CsvWriter csv(&std::cout, "# CSV,");
  csv.WriteHeader({"dataset", "method", "mia_accuracy_mean",
                   "mia_accuracy_std", "mia_precision_mean",
                   "mia_precision_std", "model_accuracy"});

  bench::PrintHeader(
      "Table 1 - MIA on unlearned models (50% = perfect erasure)");
  std::printf("%-12s %-5s %20s %22s %10s\n", "dataset", "meth",
              "accuracy (mean±std)", "precision (mean±std)", "model acc");

  for (const std::string& name : ScaledProfileNames()) {
    DatasetProfile profile = ScaledProfile(name).value();
    // Keep each run snappy: trim the two largest profiles.
    profile = bench::ShrinkProfile(profile, name == "femnist" ? 2 : 1);

    struct Aggregate {
      double accuracy_sum = 0.0;
      double accuracy_var_sum = 0.0;
      double precision_sum = 0.0;
      double precision_var_sum = 0.0;
      double model_accuracy_sum = 0.0;
    };
    std::map<std::string, Aggregate> per_method;

    for (int64_t w = 0; w < *workloads; ++w) {
      const uint64_t workload_seed = static_cast<uint64_t>(*seed) + 1000 * w;
      FederatedDataset probe = BuildFederatedData(profile, workload_seed);
      StreamId id;
      id.purpose = RngPurpose::kGeneric;
      RngStream rng(workload_seed + 9, id);
      std::vector<SampleRef> targets =
          PickRandomActiveSamples(probe, *num_targets, &rng);
      Batch member_pool = GatherSamples(probe, targets);
      Batch nonmember_pool = HoldoutPool(profile, targets, workload_seed);
      MiaOptions mia;
      mia.trials = (*trials + *workloads - 1) / *workloads;
      mia.seed = workload_seed + 100;

      struct MethodRun {
        const char* method;
        AttackRow row;
      };
      std::vector<MethodRun> runs;
      runs.push_back({"FRS", AttackFrs(profile, targets, member_pool,
                                       nonmember_pool, mia, workload_seed)});
      runs.push_back({"FR2", AttackFr2(profile, targets, member_pool,
                                       nonmember_pool, mia, workload_seed)});
      runs.push_back({"FATS", AttackFats(profile, targets, member_pool,
                                         nonmember_pool, mia,
                                         workload_seed)});
      for (const MethodRun& run : runs) {
        Aggregate& agg = per_method[run.method];
        agg.accuracy_sum += run.row.result.accuracy_mean;
        agg.accuracy_var_sum +=
            run.row.result.accuracy_std * run.row.result.accuracy_std;
        agg.precision_sum += run.row.result.precision_mean;
        agg.precision_var_sum +=
            run.row.result.precision_std * run.row.result.precision_std;
        agg.model_accuracy_sum += run.row.final_accuracy;
      }
    }

    for (const char* method : {"FRS", "FR2", "FATS"}) {
      const Aggregate& agg = per_method[method];
      const double n = static_cast<double>(*workloads);
      const double acc = agg.accuracy_sum / n;
      const double acc_std = std::sqrt(agg.accuracy_var_sum / n);
      const double prec = agg.precision_sum / n;
      const double prec_std = std::sqrt(agg.precision_var_sum / n);
      const double model_acc = agg.model_accuracy_sum / n;
      std::printf("%-12s %-5s %9.2f%% ± %5.2f%% %11.2f%% ± %5.2f%% %9.3f\n",
                  name.c_str(), method, 100 * acc, 100 * acc_std, 100 * prec,
                  100 * prec_std, model_acc);
      csv.WriteRow({name, method, FormatDouble(acc, 4),
                    FormatDouble(acc_std, 4), FormatDouble(prec, 4),
                    FormatDouble(prec_std, 4), FormatDouble(model_acc, 4)});
    }
  }
  return 0;
}
