// Shared helpers for the paper-reproduction bench harness.
//
// Every bench prints a human-readable table to stdout plus machine-readable
// CSV rows prefixed with "# CSV," so results survive interleaving.

#ifndef FATS_BENCH_BENCH_UTIL_H_
#define FATS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "core/fats_config.h"
#include "core/fats_trainer.h"
#include "data/paper_configs.h"
#include "fl/fedavg.h"
#include "util/csv_writer.h"
#include "util/string_util.h"

namespace fats {
namespace bench {

/// Scales a profile down by `shrink` (>=1) so sweeps finish on one core:
/// fewer clients and rounds, same ratios where feasible.
inline DatasetProfile ShrinkProfile(DatasetProfile profile, int64_t shrink) {
  if (shrink <= 1) return profile;
  profile.clients_m = std::max<int64_t>(profile.clients_per_round_k * 2,
                                        profile.clients_m / shrink);
  profile.rounds_r = std::max<int64_t>(3, profile.rounds_r / shrink);
  profile.test_size = std::max<int64_t>(100, profile.test_size / shrink);
  return profile;
}

/// FedAvg options matching a profile (used for the FRS / FR² baselines).
inline FedAvgOptions FedAvgOptionsFromProfile(const DatasetProfile& profile,
                                              uint64_t seed) {
  FedAvgOptions options;
  options.clients_per_round_k = profile.clients_per_round_k;
  options.local_iters_e = profile.local_iters_e;
  options.batch_b = profile.batch_b;
  options.learning_rate = profile.learning_rate;
  options.seed = seed;
  return options;
}

/// FatsConfig from a profile with explicit (K, b) overrides — used by the
/// K/b sweeps of Figures 2-4. The stability targets are back-derived so the
/// trainer runs with exactly these integers.
inline FatsConfig FatsConfigWithKB(const DatasetProfile& profile, int64_t k,
                                   int64_t b, uint64_t seed) {
  FatsConfig config = FatsConfig::FromProfile(profile);
  const double t = static_cast<double>(config.total_iters_t());
  config.rho_c = static_cast<double>(k) * t /
                 (static_cast<double>(config.local_iters_e) *
                  config.clients_m);
  config.rho_s = static_cast<double>(b) * k * t /
                 (static_cast<double>(config.clients_m) *
                  config.samples_per_client_n);
  config.seed = seed;
  return config;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Prints the full-scale Table 2 for reference.
inline void PrintPaperTable2() {
  PrintHeader("Paper Table 2 (full-scale reference; benches run the scaled "
              "profiles below)");
  for (const DatasetProfile& p : PaperTable2Profiles()) {
    std::printf("  %s\n", p.ToString().c_str());
  }
  PrintHeader("Scaled profiles used by this harness");
  for (const std::string& name : ScaledProfileNames()) {
    std::printf("  %s\n", ScaledProfile(name).value().ToString().c_str());
  }
}

}  // namespace bench
}  // namespace fats

#endif  // FATS_BENCH_BENCH_UTIL_H_
