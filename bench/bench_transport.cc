// Benchmarks (google-benchmark) for the fault-tolerant transport: frame
// codec throughput, reliable-channel delivery under increasing loss, and
// the end-to-end cost of putting a FATS training round on the wire.
//
// Feeds the bench-regression smoke: tools/ci.sh runs this binary with
// --benchmark_out=BENCH_transport_current.json and tools/bench_check
// compares the result against the checked-in BENCH_transport.json
// baseline.
//
// BM_ChannelDeliver's loss sweep is the acceptance story: delivery cost
// grows with the loss rate only through the retransmit counters (reported
// alongside the timings), while the clean payload charge stays constant —
// the bytes-level statement of the exactness contract.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/fats_trainer.h"
#include "data/paper_configs.h"
#include "tensor/tensor.h"
#include "transport/fault_injection.h"
#include "transport/reliable_channel.h"
#include "transport/transport.h"
#include "transport/wire_format.h"

namespace fats {
namespace {

using transport::Direction;
using transport::EncodedModel;
using transport::MessageAddress;
using transport::MessageType;
using transport::ReliableChannel;
using transport::TransportFaultSpec;
using transport::WireMessage;

Tensor ParamVector(int64_t params) {
  std::vector<float> values(static_cast<size_t>(params));
  for (int64_t i = 0; i < params; ++i) {
    values[static_cast<size_t>(i)] = 0.25f * static_cast<float>(i % 97) - 12.f;
  }
  return Tensor({params}, std::move(values));
}

void BM_FrameEncode(benchmark::State& state) {
  const int64_t params = state.range(0);
  WireMessage message;
  message.type = MessageType::kModelBroadcast;
  message.round = 7;
  message.client = 3;
  message.payload = transport::EncodeModelPayload(ParamVector(params));
  for (auto _ : state) {
    std::string frame = transport::EncodeFrame(message);
    benchmark::DoNotOptimize(frame.data());
  }
  state.SetBytesProcessed(
      state.iterations() *
      (transport::kFrameHeaderBytes +
       static_cast<int64_t>(message.payload.size())));
}
BENCHMARK(BM_FrameEncode)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

void BM_FrameDecode(benchmark::State& state) {
  const int64_t params = state.range(0);
  WireMessage message;
  message.type = MessageType::kModelUpdate;
  message.round = 7;
  message.client = 3;
  message.payload = transport::EncodeModelPayload(ParamVector(params));
  const std::string frame = transport::EncodeFrame(message);
  for (auto _ : state) {
    Result<WireMessage> decoded = transport::DecodeFrame(frame);
    benchmark::DoNotOptimize(decoded.value().payload.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(frame.size()));
}
BENCHMARK(BM_FrameDecode)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

// One logical model delivery per iteration at drop rates 0% / 5% / 20%.
// The fault schedule is a pure function of the address, so the sweep is
// exactly reproducible; the retransmit counters surface the overhead the
// timing alone would hide.
void BM_ChannelDeliver(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 100.0;
  TransportFaultSpec spec;
  if (loss > 0.0) {
    spec = TransportFaultSpec::Parse(
               StrFormat("drop=%.2f,corrupt=0.02,duplicate=0.02,seed=9",
                         loss))
               .value();
  }
  transport::LocalTransport wire;
  ReliableChannel channel(&wire, spec);
  const EncodedModel model(ParamVector(1 << 12));
  uint32_t seq = 0;
  for (auto _ : state) {
    MessageAddress address;
    address.direction = Direction::kDownlink;
    address.round = seq;  // spread deliveries across the fault schedule
    address.seq = seq++;
    benchmark::DoNotOptimize(
        channel.DeliverModel(address, model).value().params.data());
  }
  const transport::ChannelStats& stats = channel.stats();
  state.counters["attempts_per_msg"] =
      static_cast<double>(stats.attempts) /
      static_cast<double>(std::max<int64_t>(1, stats.messages));
  state.counters["retransmits"] = static_cast<double>(stats.retransmits);
  state.counters["crc_rejects"] = static_cast<double>(stats.crc_rejects);
  state.SetBytesProcessed(state.iterations() * model.payload_bytes());
}
BENCHMARK(BM_ChannelDeliver)->Arg(0)->Arg(5)->Arg(20);

// End-to-end: a full (tiny) FATS training run with every broadcast and
// upload on the wire, clean vs 20% lossy. The delta between the two args
// is the whole-system price of the retry protocol.
void BM_FatsTrainOverWire(benchmark::State& state) {
  const bool lossy = state.range(0) != 0;
  DatasetProfile profile = ScaledProfile("mnist").value();
  profile.clients_m = 12;
  profile.samples_per_client_n = 16;
  profile.rounds_r = 4;
  profile.local_iters_e = 2;
  profile.test_size = 32;
  int64_t retransmit_bytes = 0;
  int64_t downlink_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    FederatedDataset data = BuildFederatedData(profile, 13);
    FatsConfig config = bench::FatsConfigWithKB(profile, /*k=*/4,
                                                /*b=*/4, 13);
    if (lossy) {
      config.transport_fault_spec =
          "drop=0.2,corrupt=0.05,duplicate=0.05,seed=4";
    }
    state.ResumeTiming();
    FatsTrainer trainer(profile.model, config, &data);
    trainer.Train();
    retransmit_bytes = trainer.comm_stats().retransmit_bytes();
    downlink_bytes = trainer.comm_stats().downlink_bytes();
  }
  state.counters["retransmit_bytes"] = static_cast<double>(retransmit_bytes);
  state.counters["downlink_bytes"] = static_cast<double>(downlink_bytes);
  state.SetItemsProcessed(state.iterations() * profile.rounds_r);
}
BENCHMARK(BM_FatsTrainOverWire)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fats

// Custom main (not BENCHMARK_MAIN) so the run context records this
// binary's own build type as "fats_build_type" — bench_check keys the
// debug-build refusal on it, and the library_build_type fallback reports
// the benchmark *library's* build, not ours.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("fats_build_type", "release");
#else
  benchmark::AddCustomContext("fats_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
