// Micro-benchmarks (google-benchmark) for the numeric and sampling kernels
// underneath FATS: matmul, conv2d, LSTM step, Philox throughput, and the
// samplers whose laws the unlearning proofs depend on.

#include <benchmark/benchmark.h>

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/model_zoo.h"
#include "rng/philox.h"
#include "rng/sampling.h"
#include "tensor/tensor_ops.h"

namespace fats {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a({n, n});
  Tensor b({n, n});
  for (int64_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(i % 7);
  for (int64_t i = 0; i < b.size(); ++i) b[i] = static_cast<float>(i % 5);
  for (auto _ : state) {
    Tensor c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128);

void BM_LinearForwardBackward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  RngStream rng(uint64_t{1});
  Linear layer(256, 64, &rng);
  Tensor x({batch, 256});
  for (int64_t i = 0; i < x.size(); ++i) x[i] = 0.01f * (i % 13);
  Tensor grad({batch, 64});
  grad.Fill(0.1f);
  for (auto _ : state) {
    layer.ZeroGrad();
    Tensor y = layer.Forward(x);
    Tensor gx = layer.Backward(grad);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_LinearForwardBackward)->Arg(4)->Arg(32);

void BM_Conv2dForwardBackward(benchmark::State& state) {
  RngStream rng(uint64_t{2});
  Conv2d conv(1, 8, 16, 16, 3, 1, &rng);
  Tensor x({4, 256});
  for (int64_t i = 0; i < x.size(); ++i) x[i] = 0.01f * (i % 11);
  Tensor grad({4, conv.OutputFeatures(256)});
  grad.Fill(0.1f);
  for (auto _ : state) {
    conv.ZeroGrad();
    Tensor y = conv.Forward(x);
    Tensor gx = conv.Backward(grad);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_Conv2dForwardBackward);

void BM_LstmForwardBackward(benchmark::State& state) {
  const int64_t seq = state.range(0);
  RngStream rng(uint64_t{3});
  Lstm lstm(8, 32, seq, &rng);
  Tensor x({4, seq * 8});
  for (int64_t i = 0; i < x.size(); ++i) x[i] = 0.01f * (i % 9);
  Tensor grad({4, 32});
  grad.Fill(0.1f);
  for (auto _ : state) {
    lstm.ZeroGrad();
    Tensor y = lstm.Forward(x);
    Tensor gx = lstm.Backward(grad);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_LstmForwardBackward)->Arg(10)->Arg(40);

void BM_PhiloxThroughput(benchmark::State& state) {
  PhiloxEngine engine(42);
  uint64_t sink = 0;
  for (auto _ : state) {
    sink += engine();
  }
  benchmark::DoNotOptimize(sink);
  state.SetBytesProcessed(state.iterations() * 4);
}
BENCHMARK(BM_PhiloxThroughput);

void BM_SampleWithoutReplacement(benchmark::State& state) {
  const int64_t n = state.range(0);
  RngStream rng(uint64_t{4});
  for (auto _ : state) {
    std::vector<int64_t> s = SampleWithoutReplacement(n, n / 10 + 1, &rng);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_SampleWithoutReplacement)->Arg(100)->Arg(10000);

void BM_SampleClientMultiset(benchmark::State& state) {
  RngStream rng(uint64_t{5});
  for (auto _ : state) {
    std::vector<int64_t> s = SampleWithReplacement(1000, 20, &rng);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_SampleClientMultiset);

void BM_ModelSgdStep(benchmark::State& state) {
  ModelSpec spec;
  spec.kind = ModelKind::kSmallCnn;
  spec.image_channels = 1;
  spec.image_height = 8;
  spec.image_width = 8;
  spec.conv_channels = 6;
  spec.num_classes = 10;
  Model model(spec, 1);
  Tensor x({4, 64});
  for (int64_t i = 0; i < x.size(); ++i) x[i] = 0.01f * (i % 17);
  std::vector<int64_t> y = {0, 3, 7, 9};
  for (auto _ : state) {
    double loss = model.ComputeLossAndGradients(x, y);
    model.SgdStep(0.05);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_ModelSgdStep);

}  // namespace
}  // namespace fats

BENCHMARK_MAIN();
