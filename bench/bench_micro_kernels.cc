// Micro-benchmarks (google-benchmark) for the numeric and sampling kernels
// underneath FATS: matmul, conv2d, LSTM step, Philox throughput, and the
// samplers whose laws the unlearning proofs depend on.
//
// The GEMM / conv / step-latency cases feed the bench-regression smoke:
// tools/ci.sh runs this binary with --benchmark_out=BENCH_kernels.json and
// tools/bench_check compares the result against the checked-in baseline.
// Speedup baselines are benchmarked here too: BM_ScalarIkjMatMul is the
// pre-kernel scalar loop (the kernel this PR replaced) and
// BM_ReferenceMatMul is the contract-defining triple loop.
//
// `--threads=N` (stripped before google-benchmark sees argv) sets the worker
// count the *Parallel benchmarks run with; serial benchmarks ignore it. The
// run context records it as "fats_threads" next to "fats_build_type", and
// tools/bench_check refuses baselines recorded from debug builds.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/model_zoo.h"
#include "nn/weight_pack.h"
#include "nn/workspace.h"
#include "rng/philox.h"
#include "rng/sampling.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "util/thread_pool.h"

namespace fats {
namespace {

// Worker count for the *Parallel benchmarks, set by --threads=N in main.
int64_t g_bench_threads = 2;

void FillPattern(Tensor* t, int64_t modulus, float scale) {
  for (int64_t i = 0; i < t->size(); ++i) {
    (*t)[i] = scale * static_cast<float>(i % modulus);
  }
}

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a({n, n});
  Tensor b({n, n});
  Tensor c({n, n});
  FillPattern(&a, 7, 1.0f);
  FillPattern(&b, 5, 1.0f);
  for (auto _ : state) {
    MatMulInto(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetBytesProcessed(state.iterations() * 3 * n * n *
                          static_cast<int64_t>(sizeof(float)));
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

// BM_MatMul with a gemm::ParallelScope active: same kernel, same bits (the
// fixed row-band ownership split — tests/kernel_contract_test.cc), wall
// clock divided across --threads workers when the machine has the cores.
// Sizes start at 128 because 64^3 sits below kParallelGemmMinFlops and
// would silently measure the serial path.
void BM_MatMulParallel(benchmark::State& state) {
  const int64_t n = state.range(0);
  ThreadPool pool(g_bench_threads);
  gemm::ParallelScope scope(&pool);
  Tensor a({n, n});
  Tensor b({n, n});
  Tensor c({n, n});
  FillPattern(&a, 7, 1.0f);
  FillPattern(&b, 5, 1.0f);
  for (auto _ : state) {
    MatMulInto(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetBytesProcessed(state.iterations() * 3 * n * n *
                          static_cast<int64_t>(sizeof(float)));
}
// UseRealTime: with a pool active the calling thread mostly waits, so its
// CPU clock under-counts the work; wall time is the honest rate base.
BENCHMARK(BM_MatMulParallel)->Arg(128)->Arg(256)->UseRealTime();

// The scalar i-k-j loop that MatMul used before the blocked kernels — kept
// here (minus its data-dependent zero skip) as the speedup baseline for the
// BM_MatMul/256 >= 4x acceptance check.
void BM_ScalarIkjMatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a({n, n});
  Tensor b({n, n});
  Tensor c({n, n});
  FillPattern(&a, 7, 1.0f);
  FillPattern(&b, 5, 1.0f);
  for (auto _ : state) {
    c.SetZero();
    const float* ap = a.data();
    const float* bp = b.data();
    float* cp = c.data();
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t kk = 0; kk < n; ++kk) {
        const float aik = ap[i * n + kk];
        const float* brow = bp + kk * n;
        float* crow = cp + i * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetBytesProcessed(state.iterations() * 3 * n * n *
                          static_cast<int64_t>(sizeof(float)));
}
BENCHMARK(BM_ScalarIkjMatMul)->Arg(128)->Arg(256);

// The canonical-order reference loop that defines the deterministic
// contract (gemm.h). Slowest of the three; kept for perspective.
void BM_ReferenceMatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a({n, n});
  Tensor b({n, n});
  Tensor c({n, n});
  FillPattern(&a, 7, 1.0f);
  FillPattern(&b, 5, 1.0f);
  for (auto _ : state) {
    gemm::ReferenceSgemmNN(n, n, n, a.data(), n, b.data(), n, c.data(), n,
                           false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetBytesProcessed(state.iterations() * 3 * n * n *
                          static_cast<int64_t>(sizeof(float)));
}
BENCHMARK(BM_ReferenceMatMul)->Arg(128)->Arg(256);

// Rectangular shapes from the paper models: a Linear(256->64) forward panel
// (batch x 256) @ (64 x 256)^T and an LSTM gate block (batch x H) @ (4H x H)^T
// with H = 32 (kCharLstm's hidden size).
void BM_MatMulLinearShape(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Tensor x({batch, 256});
  Tensor w({64, 256});
  Tensor y({batch, 64});
  FillPattern(&x, 13, 0.01f);
  FillPattern(&w, 7, 0.01f);
  for (auto _ : state) {
    MatMulTransposeBInto(x, w, &y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * batch * 256 * 64);
}
BENCHMARK(BM_MatMulLinearShape)->Arg(4)->Arg(32);

void BM_MatMulLstmGateShape(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Tensor h({batch, 32});
  Tensor u({128, 32});  // (4H x H)
  Tensor z({batch, 128});
  FillPattern(&h, 9, 0.01f);
  FillPattern(&u, 7, 0.01f);
  for (auto _ : state) {
    MatMulTransposeBInto(h, u, &z);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * batch * 32 * 128);
}
BENCHMARK(BM_MatMulLstmGateShape)->Arg(4)->Arg(32);

void BM_LinearForwardBackward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  RngStream rng(uint64_t{1});
  Linear layer(256, 64, &rng);
  Workspace ws;
  Tensor x({batch, 256});
  FillPattern(&x, 13, 0.01f);
  Tensor grad({batch, 64});
  grad.Fill(0.1f);
  for (auto _ : state) {
    layer.ZeroGrad();
    const Tensor& y = layer.Forward(x, &ws);
    const Tensor& gx = layer.Backward(grad, &ws);
    benchmark::DoNotOptimize(y.data());
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_LinearForwardBackward)->Arg(4)->Arg(32);

// im2col + GEMM conv at an MNIST-like shape (1x28x28, 8 output channels).
void BM_Conv2dForwardBackward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  RngStream rng(uint64_t{2});
  Conv2d conv(1, 8, 16, 16, 3, 1, &rng);
  Workspace ws;
  Tensor x({batch, 256});
  FillPattern(&x, 11, 0.01f);
  Tensor grad({batch, conv.OutputFeatures(256)});
  grad.Fill(0.1f);
  for (auto _ : state) {
    conv.ZeroGrad();
    const Tensor& y = conv.Forward(x, &ws);
    const Tensor& gx = conv.Backward(grad, &ws);
    benchmark::DoNotOptimize(y.data());
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_Conv2dForwardBackward)->Arg(1)->Arg(4)->Arg(16);

void BM_Im2colConvForward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  RngStream rng(uint64_t{6});
  Conv2d conv(1, 8, 28, 28, 3, 1, &rng);
  Workspace ws;
  Tensor x({batch, 28 * 28});
  FillPattern(&x, 11, 0.01f);
  for (auto _ : state) {
    const Tensor& y = conv.Forward(x, &ws);
    benchmark::DoNotOptimize(y.data());
  }
  // 2*K MACs per output element.
  state.SetItemsProcessed(state.iterations() * batch * 8 * 28 * 28 * 2 * 9);
}
BENCHMARK(BM_Im2colConvForward)->Arg(4)->Arg(32);

void BM_LstmForwardBackward(benchmark::State& state) {
  const int64_t seq = state.range(0);
  RngStream rng(uint64_t{3});
  Lstm lstm(8, 32, seq, &rng);
  Workspace ws;
  Tensor x({4, seq * 8});
  FillPattern(&x, 9, 0.01f);
  Tensor grad({4, 32});
  grad.Fill(0.1f);
  for (auto _ : state) {
    lstm.ZeroGrad();
    const Tensor& y = lstm.Forward(x, &ws);
    const Tensor& gx = lstm.Backward(grad, &ws);
    benchmark::DoNotOptimize(y.data());
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_LstmForwardBackward)->Arg(10)->Arg(40);

void BM_PhiloxThroughput(benchmark::State& state) {
  // Measures the raw engine; key derivation is out of scope here.
  PhiloxEngine engine(42);  // fats-lint: allow(rng-raw-key)
  uint64_t sink = 0;
  for (auto _ : state) {
    sink += engine();
  }
  benchmark::DoNotOptimize(sink);
  state.SetBytesProcessed(state.iterations() * 4);
}
BENCHMARK(BM_PhiloxThroughput);

void BM_SampleWithoutReplacement(benchmark::State& state) {
  const int64_t n = state.range(0);
  RngStream rng(uint64_t{4});
  for (auto _ : state) {
    std::vector<int64_t> s = SampleWithoutReplacement(n, n / 10 + 1, &rng);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_SampleWithoutReplacement)->Arg(100)->Arg(10000);

void BM_SampleClientMultiset(benchmark::State& state) {
  RngStream rng(uint64_t{5});
  for (auto _ : state) {
    std::vector<int64_t> s = SampleWithReplacement(1000, 20, &rng);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_SampleClientMultiset);

void BM_ModelSgdStep(benchmark::State& state) {
  ModelSpec spec;
  spec.kind = ModelKind::kSmallCnn;
  spec.image_channels = 1;
  spec.image_height = 8;
  spec.image_width = 8;
  spec.conv_channels = 6;
  spec.num_classes = 10;
  Model model(spec, 1);
  Tensor x({4, 64});
  FillPattern(&x, 17, 0.01f);
  std::vector<int64_t> y = {0, 3, 7, 9};
  for (auto _ : state) {
    double loss = model.ComputeLossAndGradients(x, y);
    model.SgdStep(0.05);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_ModelSgdStep);

void BM_ModelSgdStepLstm(benchmark::State& state) {
  ModelSpec spec;
  spec.kind = ModelKind::kCharLstm;
  spec.vocab_size = 64;
  spec.embed_dim = 8;
  spec.lstm_hidden = 32;
  spec.seq_len = 20;
  spec.num_classes = 64;
  Model model(spec, 2);
  Tensor x({4, 20});
  for (int64_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i % 64);
  std::vector<int64_t> y = {1, 5, 9, 13};
  for (auto _ : state) {
    double loss = model.ComputeLossAndGradients(x, y);
    model.SgdStep(0.05);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_ModelSgdStepLstm);

void BM_ModelSgdStepMlp(benchmark::State& state) {
  ModelSpec spec;
  spec.kind = ModelKind::kMlp;
  spec.input_dim = 256;
  spec.hidden_dims = {128, 64};
  spec.num_classes = 10;
  Model model(spec, 3);
  Tensor x({32, 256});
  FillPattern(&x, 19, 0.01f);
  std::vector<int64_t> y(32);
  for (size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int64_t>(i % 10);
  for (auto _ : state) {
    double loss = model.ComputeLossAndGradients(x, y);
    model.SgdStep(0.05);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_ModelSgdStepMlp);

// The MLP step with a parallel GEMM scope: batch 32 x (256 -> 128) clears
// kParallelGemmMinFlops, so the forward/backward panels actually split
// across workers. Items = the dominant GEMM MACs per step; bytes = the
// parameter vector read+written by SgdStep.
void BM_ModelSgdStepMlpParallel(benchmark::State& state) {
  ModelSpec spec;
  spec.kind = ModelKind::kMlp;
  spec.input_dim = 256;
  spec.hidden_dims = {128, 64};
  spec.num_classes = 10;
  Model model(spec, 3);
  ThreadPool pool(g_bench_threads);
  gemm::ParallelScope scope(&pool);
  Tensor x({32, 256});
  FillPattern(&x, 19, 0.01f);
  std::vector<int64_t> y(32);
  for (size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int64_t>(i % 10);
  for (auto _ : state) {
    double loss = model.ComputeLossAndGradients(x, y);
    model.SgdStep(0.05);
    benchmark::DoNotOptimize(loss);
  }
  const int64_t macs =
      32 * (256 * 128 + 128 * 64 + 64 * 10);  // forward panels
  state.SetItemsProcessed(state.iterations() * 2 * 3 * macs);  // fwd+dX+dW
  state.SetBytesProcessed(state.iterations() * 2 * model.NumParameters() *
                          static_cast<int64_t>(sizeof(float)));
}
BENCHMARK(BM_ModelSgdStepMlpParallel)->UseRealTime();

// Fused cross-client batching: K replicas of the round model run one local
// step each against a shared WeightPack (packed once per round) vs. each
// replica re-packing inside every Forward/Backward. The pair is the
// per-round cost the trainer's fused_round_pack_ path saves.
constexpr int64_t kPackedBatchClients = 8;

void RunClientBatchStep(std::vector<std::unique_ptr<Model>>* clients,
                        const Tensor& x, const std::vector<int64_t>& y,
                        const Tensor& params) {
  for (auto& client : *clients) {
    client->SetParameters(params);
    double loss = client->ComputeLossAndGradients(x, y);
    client->SgdStep(0.05);
    benchmark::DoNotOptimize(loss);
  }
}

void PackedBatchBench(benchmark::State& state, bool shared_pack) {
  ModelSpec spec;
  spec.kind = ModelKind::kMlp;
  spec.input_dim = 256;
  spec.hidden_dims = {128, 64};
  spec.num_classes = 10;
  Model donor(spec, 7);
  const Tensor params = donor.GetParameters();
  std::vector<std::unique_ptr<Model>> clients;
  clients.reserve(kPackedBatchClients);
  for (int64_t k = 0; k < kPackedBatchClients; ++k) {
    clients.push_back(std::make_unique<Model>(spec, 7));
  }
  WeightPack pack;
  Tensor x({32, 256});
  FillPattern(&x, 19, 0.01f);
  std::vector<int64_t> y(32);
  for (size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int64_t>(i % 10);
  for (auto _ : state) {
    if (shared_pack) {
      donor.SetParameters(params);
      donor.PackSharedWeights(&pack);
      for (auto& client : clients) client->BindSharedWeightPack(&pack);
    }
    RunClientBatchStep(&clients, x, y, params);
    if (shared_pack) {
      for (auto& client : clients) client->BindSharedWeightPack(nullptr);
    }
  }
  const int64_t macs = 32 * (256 * 128 + 128 * 64 + 64 * 10);
  state.SetItemsProcessed(state.iterations() * kPackedBatchClients * 2 * 3 *
                          macs);
  state.SetBytesProcessed(state.iterations() * kPackedBatchClients *
                          donor.NumParameters() *
                          static_cast<int64_t>(sizeof(float)));
}

void BM_ClientBatchSharedPack(benchmark::State& state) {
  PackedBatchBench(state, /*shared_pack=*/true);
}
BENCHMARK(BM_ClientBatchSharedPack);

void BM_ClientBatchPerCallPack(benchmark::State& state) {
  PackedBatchBench(state, /*shared_pack=*/false);
}
BENCHMARK(BM_ClientBatchPerCallPack);

}  // namespace
}  // namespace fats

// Custom main instead of BENCHMARK_MAIN(): strips --threads=N before
// google-benchmark parses argv, and records the build type + worker count
// in the run context so tools/bench_check can reject baselines recorded
// from debug builds or mismatched thread counts.
int main(int argc, char** argv) {
  int out = 1;  // argv[0] stays
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      fats::g_bench_threads = std::strtol(argv[i] + 10, nullptr, 10);
      if (fats::g_bench_threads < 1) fats::g_bench_threads = 1;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
#ifdef NDEBUG
  benchmark::AddCustomContext("fats_build_type", "release");
#else
  benchmark::AddCustomContext("fats_build_type", "debug");
#endif
  benchmark::AddCustomContext("fats_threads",
                              std::to_string(fats::g_bench_threads));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
