// Micro-benchmarks (google-benchmark) for the numeric and sampling kernels
// underneath FATS: matmul, conv2d, LSTM step, Philox throughput, and the
// samplers whose laws the unlearning proofs depend on.
//
// The GEMM / conv / step-latency cases feed the bench-regression smoke:
// tools/ci.sh runs this binary with --benchmark_out=BENCH_kernels.json and
// tools/bench_check compares the result against the checked-in baseline.
// Speedup baselines are benchmarked here too: BM_ScalarIkjMatMul is the
// pre-kernel scalar loop (the kernel this PR replaced) and
// BM_ReferenceMatMul is the contract-defining triple loop.

#include <benchmark/benchmark.h>

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/model_zoo.h"
#include "nn/workspace.h"
#include "rng/philox.h"
#include "rng/sampling.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

namespace fats {
namespace {

void FillPattern(Tensor* t, int64_t modulus, float scale) {
  for (int64_t i = 0; i < t->size(); ++i) {
    (*t)[i] = scale * static_cast<float>(i % modulus);
  }
}

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a({n, n});
  Tensor b({n, n});
  Tensor c({n, n});
  FillPattern(&a, 7, 1.0f);
  FillPattern(&b, 5, 1.0f);
  for (auto _ : state) {
    MatMulInto(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetBytesProcessed(state.iterations() * 3 * n * n *
                          static_cast<int64_t>(sizeof(float)));
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

// The scalar i-k-j loop that MatMul used before the blocked kernels — kept
// here (minus its data-dependent zero skip) as the speedup baseline for the
// BM_MatMul/256 >= 4x acceptance check.
void BM_ScalarIkjMatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a({n, n});
  Tensor b({n, n});
  Tensor c({n, n});
  FillPattern(&a, 7, 1.0f);
  FillPattern(&b, 5, 1.0f);
  for (auto _ : state) {
    c.SetZero();
    const float* ap = a.data();
    const float* bp = b.data();
    float* cp = c.data();
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t kk = 0; kk < n; ++kk) {
        const float aik = ap[i * n + kk];
        const float* brow = bp + kk * n;
        float* crow = cp + i * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetBytesProcessed(state.iterations() * 3 * n * n *
                          static_cast<int64_t>(sizeof(float)));
}
BENCHMARK(BM_ScalarIkjMatMul)->Arg(128)->Arg(256);

// The canonical-order reference loop that defines the deterministic
// contract (gemm.h). Slowest of the three; kept for perspective.
void BM_ReferenceMatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a({n, n});
  Tensor b({n, n});
  Tensor c({n, n});
  FillPattern(&a, 7, 1.0f);
  FillPattern(&b, 5, 1.0f);
  for (auto _ : state) {
    gemm::ReferenceSgemmNN(n, n, n, a.data(), n, b.data(), n, c.data(), n,
                           false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetBytesProcessed(state.iterations() * 3 * n * n *
                          static_cast<int64_t>(sizeof(float)));
}
BENCHMARK(BM_ReferenceMatMul)->Arg(128)->Arg(256);

// Rectangular shapes from the paper models: a Linear(256->64) forward panel
// (batch x 256) @ (64 x 256)^T and an LSTM gate block (batch x H) @ (4H x H)^T
// with H = 32 (kCharLstm's hidden size).
void BM_MatMulLinearShape(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Tensor x({batch, 256});
  Tensor w({64, 256});
  Tensor y({batch, 64});
  FillPattern(&x, 13, 0.01f);
  FillPattern(&w, 7, 0.01f);
  for (auto _ : state) {
    MatMulTransposeBInto(x, w, &y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * batch * 256 * 64);
}
BENCHMARK(BM_MatMulLinearShape)->Arg(4)->Arg(32);

void BM_MatMulLstmGateShape(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Tensor h({batch, 32});
  Tensor u({128, 32});  // (4H x H)
  Tensor z({batch, 128});
  FillPattern(&h, 9, 0.01f);
  FillPattern(&u, 7, 0.01f);
  for (auto _ : state) {
    MatMulTransposeBInto(h, u, &z);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * batch * 32 * 128);
}
BENCHMARK(BM_MatMulLstmGateShape)->Arg(4)->Arg(32);

void BM_LinearForwardBackward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  RngStream rng(uint64_t{1});
  Linear layer(256, 64, &rng);
  Workspace ws;
  Tensor x({batch, 256});
  FillPattern(&x, 13, 0.01f);
  Tensor grad({batch, 64});
  grad.Fill(0.1f);
  for (auto _ : state) {
    layer.ZeroGrad();
    const Tensor& y = layer.Forward(x, &ws);
    const Tensor& gx = layer.Backward(grad, &ws);
    benchmark::DoNotOptimize(y.data());
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_LinearForwardBackward)->Arg(4)->Arg(32);

// im2col + GEMM conv at an MNIST-like shape (1x28x28, 8 output channels).
void BM_Conv2dForwardBackward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  RngStream rng(uint64_t{2});
  Conv2d conv(1, 8, 16, 16, 3, 1, &rng);
  Workspace ws;
  Tensor x({batch, 256});
  FillPattern(&x, 11, 0.01f);
  Tensor grad({batch, conv.OutputFeatures(256)});
  grad.Fill(0.1f);
  for (auto _ : state) {
    conv.ZeroGrad();
    const Tensor& y = conv.Forward(x, &ws);
    const Tensor& gx = conv.Backward(grad, &ws);
    benchmark::DoNotOptimize(y.data());
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_Conv2dForwardBackward)->Arg(1)->Arg(4)->Arg(16);

void BM_Im2colConvForward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  RngStream rng(uint64_t{6});
  Conv2d conv(1, 8, 28, 28, 3, 1, &rng);
  Workspace ws;
  Tensor x({batch, 28 * 28});
  FillPattern(&x, 11, 0.01f);
  for (auto _ : state) {
    const Tensor& y = conv.Forward(x, &ws);
    benchmark::DoNotOptimize(y.data());
  }
  // 2*K MACs per output element.
  state.SetItemsProcessed(state.iterations() * batch * 8 * 28 * 28 * 2 * 9);
}
BENCHMARK(BM_Im2colConvForward)->Arg(4)->Arg(32);

void BM_LstmForwardBackward(benchmark::State& state) {
  const int64_t seq = state.range(0);
  RngStream rng(uint64_t{3});
  Lstm lstm(8, 32, seq, &rng);
  Workspace ws;
  Tensor x({4, seq * 8});
  FillPattern(&x, 9, 0.01f);
  Tensor grad({4, 32});
  grad.Fill(0.1f);
  for (auto _ : state) {
    lstm.ZeroGrad();
    const Tensor& y = lstm.Forward(x, &ws);
    const Tensor& gx = lstm.Backward(grad, &ws);
    benchmark::DoNotOptimize(y.data());
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_LstmForwardBackward)->Arg(10)->Arg(40);

void BM_PhiloxThroughput(benchmark::State& state) {
  // Measures the raw engine; key derivation is out of scope here.
  PhiloxEngine engine(42);  // fats-lint: allow(rng-raw-key)
  uint64_t sink = 0;
  for (auto _ : state) {
    sink += engine();
  }
  benchmark::DoNotOptimize(sink);
  state.SetBytesProcessed(state.iterations() * 4);
}
BENCHMARK(BM_PhiloxThroughput);

void BM_SampleWithoutReplacement(benchmark::State& state) {
  const int64_t n = state.range(0);
  RngStream rng(uint64_t{4});
  for (auto _ : state) {
    std::vector<int64_t> s = SampleWithoutReplacement(n, n / 10 + 1, &rng);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_SampleWithoutReplacement)->Arg(100)->Arg(10000);

void BM_SampleClientMultiset(benchmark::State& state) {
  RngStream rng(uint64_t{5});
  for (auto _ : state) {
    std::vector<int64_t> s = SampleWithReplacement(1000, 20, &rng);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_SampleClientMultiset);

void BM_ModelSgdStep(benchmark::State& state) {
  ModelSpec spec;
  spec.kind = ModelKind::kSmallCnn;
  spec.image_channels = 1;
  spec.image_height = 8;
  spec.image_width = 8;
  spec.conv_channels = 6;
  spec.num_classes = 10;
  Model model(spec, 1);
  Tensor x({4, 64});
  FillPattern(&x, 17, 0.01f);
  std::vector<int64_t> y = {0, 3, 7, 9};
  for (auto _ : state) {
    double loss = model.ComputeLossAndGradients(x, y);
    model.SgdStep(0.05);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_ModelSgdStep);

void BM_ModelSgdStepLstm(benchmark::State& state) {
  ModelSpec spec;
  spec.kind = ModelKind::kCharLstm;
  spec.vocab_size = 64;
  spec.embed_dim = 8;
  spec.lstm_hidden = 32;
  spec.seq_len = 20;
  spec.num_classes = 64;
  Model model(spec, 2);
  Tensor x({4, 20});
  for (int64_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i % 64);
  std::vector<int64_t> y = {1, 5, 9, 13};
  for (auto _ : state) {
    double loss = model.ComputeLossAndGradients(x, y);
    model.SgdStep(0.05);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_ModelSgdStepLstm);

void BM_ModelSgdStepMlp(benchmark::State& state) {
  ModelSpec spec;
  spec.kind = ModelKind::kMlp;
  spec.input_dim = 256;
  spec.hidden_dims = {128, 64};
  spec.num_classes = 10;
  Model model(spec, 3);
  Tensor x({32, 256});
  FillPattern(&x, 19, 0.01f);
  std::vector<int64_t> y(32);
  for (size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int64_t>(i % 10);
  for (auto _ : state) {
    double loss = model.ComputeLossAndGradients(x, y);
    model.SgdStep(0.05);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_ModelSgdStepMlp);

}  // namespace
}  // namespace fats

BENCHMARK_MAIN();
