// Ablation: which sample-level unlearning transports are actually exact?
//
// Three implementations of FATS-SU are compared against fresh retraining on
// the reduced dataset, by two-sample chi-square over the full discrete
// sampling-history distribution in a tiny instance (M=3, N=3, K=1, b=1,
// R=2, E=1):
//
//   replay  — this library's SampleUnlearner: keep the client-selection
//             history, substitute only the target client's offending
//             mini-batches with fresh draws from ξ(N−1,b), deterministically
//             replay the models. This is the SU_r transport from the
//             paper's Theorem 1 proof. EXACT.
//   rerun   — re-run Algorithm 1 from t_S with fresh randomness (a literal
//             reading of Algorithm 2's "FATS(t_S, ...)"): re-draws the
//             client selections of later rounds. BIASED: keeping the prefix
//             conditions the joint (selection, batch) law on "target not
//             used", which deflates the target client's selection marginal
//             (e.g. M=3,K=1,b=1,N=3,R=1: kept+resampled mass on (k=0,{0})
//             is 1/9 + 1/9·1/6 = 7/54 ≠ μ'((0,{0})) = 1/6).
//   scratch — the §5.3.2 compact scheme: full fresh retrain on a hit.
//             Same conditioning on the no-hit path ⇒ biased at second order
//             in ρ_S (client-level scratch IS exact — see DESIGN.md §4).
//
// Expected output: replay accepts H0 (chi2 below the 99.9% critical value);
// rerun and scratch reject with room to spare at these trial counts.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_util.h"
#include "core/compact_unlearner.h"
#include "core/sample_unlearner.h"
#include "util/flags.h"

namespace fats {
namespace {

constexpr int64_t kClients = 3;
constexpr int64_t kSamples = 3;
constexpr int64_t kRounds = 2;

FatsConfig TinyDiscreteConfig(uint64_t seed) {
  FatsConfig config;
  config.clients_m = kClients;
  config.samples_per_client_n = kSamples;
  config.rounds_r = kRounds;
  config.local_iters_e = 1;
  config.rho_c = 2.0 / 3.0;  // K = 1
  config.rho_s = 2.0 / 9.0;  // b = 1
  config.learning_rate = 0.1;
  config.seed = seed;
  return config;
}

FederatedDataset TinyData() {
  SyntheticImageConfig config;
  config.num_classes = 2;
  config.feature_dim = 4;
  config.seed = 17;
  SyntheticImageGenerator gen(config);
  std::vector<InMemoryDataset> shards;
  for (int64_t k = 0; k < kClients; ++k) {
    shards.push_back(gen.Generate(kSamples, {}, -1,
                                  static_cast<uint64_t>(k) + 100));
  }
  return FederatedDataset(std::move(shards), gen.Generate(20, {}, -1, 999));
}

ModelSpec TinyModel() {
  ModelSpec spec;
  spec.kind = ModelKind::kLogReg;
  spec.input_dim = 4;
  spec.num_classes = 2;
  return spec;
}

std::string EncodeHistory(const FatsTrainer& trainer) {
  std::string out;
  for (int64_t r = 1; r <= kRounds; ++r) {
    const std::vector<int64_t>* selection =
        trainer.store().GetClientSelection(r);
    if (selection == nullptr) continue;
    out += "R[";
    // Sequential appends: `"B" + std::to_string(k) + ...` trips GCC 12's
    // -Wrestrict false positive (PR 105651) at -O3 under -Werror.
    for (int64_t k : *selection) {
      out += std::to_string(k);
      out += ",";
    }
    out += "]";
    for (int64_t k = 0; k < kClients; ++k) {
      const std::vector<int64_t>* batch = trainer.store().GetMinibatch(r, k);
      if (batch == nullptr) continue;
      out += "B";
      out += std::to_string(k);
      out += "(";
      for (int64_t i : *batch) {
        out += std::to_string(i);
        out += ",";
      }
      out += ")";
    }
  }
  return out;
}

double ChiSquareCritical999(int dof) {
  const double z = 3.0902;
  const double d = static_cast<double>(dof);
  const double term = 1.0 - 2.0 / (9.0 * d) + z * std::sqrt(2.0 / (9.0 * d));
  return d * term * term * term;
}

struct ChiSquareResult {
  double statistic = 0.0;
  int dof = 0;
  double critical = 0.0;
};

ChiSquareResult TwoSample(const std::map<std::string, int>& a,
                          const std::map<std::string, int>& b) {
  std::map<std::string, std::pair<int, int>> merged;
  for (const auto& [key, count] : a) merged[key].first = count;
  for (const auto& [key, count] : b) merged[key].second = count;
  ChiSquareResult result;
  result.dof = -1;
  double rare_a = 0.0;
  double rare_b = 0.0;
  for (const auto& [key, pair] : merged) {
    const double total = pair.first + pair.second;
    if (total < 20.0) {
      rare_a += pair.first;
      rare_b += pair.second;
      continue;
    }
    const double expected = total / 2.0;
    result.statistic +=
        (pair.first - expected) * (pair.first - expected) / expected;
    result.statistic +=
        (pair.second - expected) * (pair.second - expected) / expected;
    ++result.dof;
  }
  if (rare_a + rare_b >= 20.0) {
    const double expected = (rare_a + rare_b) / 2.0;
    result.statistic += (rare_a - expected) * (rare_a - expected) / expected;
    result.statistic += (rare_b - expected) * (rare_b - expected) / expected;
    ++result.dof;
  }
  result.critical = ChiSquareCritical999(std::max(result.dof, 1));
  return result;
}

enum class Transport { kReplay, kRerun, kScratch };

std::string RunUnlearn(Transport transport, uint64_t seed,
                       const SampleRef& target) {
  FederatedDataset data = TinyData();
  FatsConfig config = TinyDiscreteConfig(seed);
  FatsTrainer trainer(TinyModel(), config, &data);
  trainer.Train();
  switch (transport) {
    case Transport::kReplay: {
      SampleUnlearner unlearner(&trainer);
      FATS_CHECK(unlearner.Unlearn(target, config.total_iters_t()).ok());
      break;
    }
    case Transport::kRerun: {
      // The naive reading of Algorithm 2: recompute from the first use with
      // entirely fresh randomness (including client selections).
      const int64_t t_s = trainer.store().EarliestSampleUse(target);
      FATS_CHECK(data.RemoveSample(target).ok());
      if (t_s >= 1) {
        trainer.store().TruncateFromIteration(t_s, config.local_iters_e);
        trainer.BumpGeneration();
        trainer.Run(t_s);
      }
      break;
    }
    case Transport::kScratch: {
      CompactUnlearner unlearner(&trainer);
      FATS_CHECK(
          unlearner.UnlearnSample(target, config.total_iters_t()).ok());
      break;
    }
  }
  return EncodeHistory(trainer);
}

}  // namespace
}  // namespace fats

int main(int argc, char** argv) {
  using namespace fats;  // NOLINT
  FlagParser flags;
  int64_t* trials = flags.AddInt("trials", 20000,
                                 "trials per arm (more = sharper test)");
  Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  const SampleRef target{0, 1};

  // Reference arm: fresh training on the reduced dataset.
  std::map<std::string, int> reference;
  for (int64_t trial = 0; trial < *trials; ++trial) {
    FederatedDataset data = TinyData();
    FATS_CHECK(data.RemoveSample(target).ok());
    FatsTrainer trainer(TinyModel(),
                        TinyDiscreteConfig(777000 + trial), &data);
    trainer.Train();
    reference[EncodeHistory(trainer)]++;
  }

  CsvWriter csv(&std::cout, "# CSV,");
  csv.WriteHeader({"transport", "chi_square", "dof", "critical_999",
                   "verdict"});
  bench::PrintHeader(
      "Ablation: exactness of sample-level unlearning transports "
      "(two-sample chi-square vs fresh retrain, alpha = 0.001)");

  struct Arm {
    Transport transport;
    const char* name;
  };
  for (const Arm& arm : {Arm{Transport::kReplay, "replay (this library)"},
                         Arm{Transport::kRerun, "rerun-from-t_S (naive)"},
                         Arm{Transport::kScratch, "scratch-on-hit (5.3.2)"}}) {
    std::map<std::string, int> counts;
    for (int64_t trial = 0; trial < *trials; ++trial) {
      counts[RunUnlearn(arm.transport, 555000 + trial, target)]++;
    }
    ChiSquareResult result = TwoSample(reference, counts);
    const bool exact = result.statistic < result.critical;
    std::printf("  %-24s chi2 = %8.1f (dof %d, crit %6.1f) -> %s\n",
                arm.name, result.statistic, result.dof, result.critical,
                exact ? "EXACT (H0 accepted)" : "BIASED (H0 rejected)");
    csv.WriteRow({arm.name, FormatDouble(result.statistic, 2),
                  std::to_string(result.dof),
                  FormatDouble(result.critical, 2),
                  exact ? "exact" : "biased"});
  }
  std::printf(
      "\nOnly the per-batch transport (keep selections, substitute offending"
      "\nbatches, replay) realizes the coupling in Theorem 1's proof; the "
      "naive\nre-run and the compact scratch retrain both condition the "
      "selection\nhistory and are measurably biased at the sample level.\n");
  return 0;
}
