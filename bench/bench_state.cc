// Benchmarks (google-benchmark) for the million-client state layer: index
// codec throughput, tiered history-log append and cold-read costs, sharded
// deterministic tree aggregation, and lazy shard materialization.
//
// Feeds the bench-regression smoke: tools/ci.sh runs this binary with
// --benchmark_out=BENCH_state_current.json and tools/bench_check compares
// the result against the checked-in BENCH_state.json baseline.
//
// The counters tell the memory story the timings alone would hide:
// BM_HistoryLogAppend reports resident_bytes with and without a spill
// tier — the bounded-RSS claim of DESIGN.md §7.8 is that the spilled
// variant's residency stays flat while the record count grows.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "data/paper_configs.h"
#include "rng/rng_stream.h"
#include "state/history_codec.h"
#include "state/history_log.h"
#include "state/segment_spill.h"
#include "state/tree_aggregate.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace fats {
namespace {

using state::IndexHistoryLog;
using state::SegmentSpiller;
using state::SegmentSpillerOptions;

std::string FreshSpillDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("fats_bench_" + name))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

// A sorted minibatch-shaped index list: the workload the codec exists for.
std::vector<int64_t> SortedBatch(int64_t n, uint64_t seed) {
  StreamId id;
  id.purpose = RngPurpose::kPartition;
  RngStream rng(seed, id);
  std::vector<int64_t> values;
  values.reserve(static_cast<size_t>(n));
  int64_t v = 0;
  for (int64_t i = 0; i < n; ++i) {
    v += 1 + static_cast<int64_t>(rng.UniformInt(7));
    values.push_back(v);
  }
  return values;
}

void BM_IndexListEncode(benchmark::State& state) {
  const std::vector<int64_t> values = SortedBatch(state.range(0), 3);
  std::string out;
  for (auto _ : state) {
    out.clear();
    state::AppendIndexList(values, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["encoded_bytes"] = static_cast<double>(out.size());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()) * 8);
}
BENCHMARK(BM_IndexListEncode)->Arg(16)->Arg(64)->Arg(512);

void BM_IndexListDecode(benchmark::State& state) {
  const std::string bytes =
      state::EncodeIndexList(SortedBatch(state.range(0), 3));
  std::vector<int64_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(state::DecodeIndexList(bytes, &out).ok());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_IndexListDecode)->Arg(16)->Arg(64)->Arg(512);

// Forward-training append path: iterations × K clients of minibatch lists
// through the tiering state machine. Arg 1 adds the disk tier with a tiny
// resident budget; resident_bytes is the claim under test.
void BM_HistoryLogAppend(benchmark::State& state) {
  const bool spill = state.range(0) != 0;
  const int64_t iters = 512;
  const int64_t clients_per_iter = 8;
  const std::vector<int64_t> batch = SortedBatch(32, 5);
  int64_t resident = 0;
  int64_t spilled_blocks = 0;
  const std::string dir = FreshSpillDir("log_append");
  for (auto _ : state) {
    state.PauseTiming();
    std::unique_ptr<SegmentSpiller> spiller;
    if (spill) {
      SegmentSpillerOptions options;
      options.dir = dir;
      spiller = std::make_unique<SegmentSpiller>(options);
      if (!spiller->Open().ok()) state.SkipWithError("spill dir");
    }
    state::HistoryLogOptions options;
    options.block_span = 16;
    options.resident_sealed_blocks = 2;
    options.spiller = spiller.get();
    IndexHistoryLog log(options);
    state.ResumeTiming();
    for (int64_t t = 1; t <= iters; ++t) {
      for (int64_t k = 0; k < clients_per_iter; ++k) {
        log.Save(t, k, batch);
      }
    }
    resident = log.ApproxResidentBytes();
    spilled_blocks = log.num_spilled_blocks();
    state.PauseTiming();
    log.Clear();
    if (spiller != nullptr) spiller->Clear();
    state.ResumeTiming();
  }
  std::filesystem::remove_all(dir);
  state.counters["resident_bytes"] = static_cast<double>(resident);
  state.counters["spilled_blocks"] = static_cast<double>(spilled_blocks);
  state.SetItemsProcessed(state.iterations() * iters * clients_per_iter);
}
BENCHMARK(BM_HistoryLogAppend)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Replay's read pattern: a sequential sweep over history that long left the
// decoded cache, so every block is a decode (and, with Arg 1, a segment
// read + CRC check) on its first touch.
void BM_HistoryLogColdRead(benchmark::State& state) {
  const bool spill = state.range(0) != 0;
  const int64_t iters = 512;
  const std::string dir = FreshSpillDir("log_cold");
  std::unique_ptr<SegmentSpiller> spiller;
  if (spill) {
    SegmentSpillerOptions spill_options;
    spill_options.dir = dir;
    spiller = std::make_unique<SegmentSpiller>(spill_options);
    if (!spiller->Open().ok()) state.SkipWithError("spill dir");
  }
  state::HistoryLogOptions options;
  options.block_span = 16;
  options.resident_sealed_blocks = 2;
  options.decoded_cache_blocks = 2;
  options.spiller = spiller.get();
  IndexHistoryLog log(options);
  const std::vector<int64_t> batch = SortedBatch(32, 5);
  for (int64_t t = 1; t <= iters; ++t) log.Save(t, 0, batch);
  int64_t total = 0;
  for (auto _ : state) {
    for (int64_t t = 1; t <= iters; ++t) {
      const std::vector<int64_t>* value = log.Get(t, 0);
      benchmark::DoNotOptimize(value);
      total += static_cast<int64_t>(value->size());
    }
  }
  benchmark::DoNotOptimize(total);
  log.Clear();
  if (spiller != nullptr) spiller->Clear();
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(state.iterations() * iters);
}
BENCHMARK(BM_HistoryLogColdRead)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Sharded deterministic aggregation: K client updates reduced to one
// tensor. Worker count is the sweep — the result is bit-identical across
// it, so the only thing allowed to change is the time.
void BM_TreeAggregate(benchmark::State& state) {
  const int64_t workers = state.range(0);
  const int64_t k = 64;
  const int64_t dim = 1 << 14;
  StreamId id;
  id.purpose = RngPurpose::kPartition;
  RngStream rng(11, id);
  std::vector<Tensor> inputs;
  inputs.reserve(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    std::vector<float> values(static_cast<size_t>(dim));
    for (float& v : values) v = static_cast<float>(rng.NextGaussian());
    inputs.push_back(Tensor({dim}, std::move(values)));
  }
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<ThreadPool>(workers);
  for (auto _ : state) {
    Tensor sum = state::TreeAggregate(inputs, pool.get());
    benchmark::DoNotOptimize(sum.data());
  }
  state.SetBytesProcessed(state.iterations() * k * dim * 4);
}
BENCHMARK(BM_TreeAggregate)->Arg(1)->Arg(4);

// Lazy shard materialization: the per-client generator cost that replaces
// an O(M) upfront build. Items are shards generated; the cache is sized
// below the walk so every touch is a miss (the worst case).
void BM_LazyShardMaterialize(benchmark::State& state) {
  DatasetProfile profile = ScaledProfile("mnist").value();
  profile.clients_m = 64;
  profile.samples_per_client_n = 32;
  profile.test_size = 16;
  LazyDatasetOptions options;
  options.shard_cache_capacity = 8;
  FederatedDataset data = BuildLazyFederatedData(profile, 13, options);
  for (auto _ : state) {
    for (int64_t k = 0; k < profile.clients_m; ++k) {
      benchmark::DoNotOptimize(data.client_data(k).features().data());
    }
  }
  state.SetItemsProcessed(state.iterations() * profile.clients_m);
}
BENCHMARK(BM_LazyShardMaterialize)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fats

// Custom main (not BENCHMARK_MAIN) so the run context records this
// binary's own build type as "fats_build_type" — bench_check keys the
// debug-build refusal on it, and the library_build_type fallback reports
// the benchmark *library's* build, not ours.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("fats_build_type", "release");
#else
  benchmark::AddCustomContext("fats_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
