// Figure 1 (+ Figure 5): test-accuracy trajectories of FRS, FR², and FATS
// before and after a batch of unlearning requests, for both sample-level
// and client-level unlearning, on all six dataset profiles.
//
// Paper protocol (§6.2.1): train to a stable accuracy, then issue 10
// simultaneous requests for MNIST/FEMNIST and 5 for the others; plot the
// accuracy trajectory through the recovery phase.
//
// Expected shape: all methods reach similar pre-unlearning accuracy; after
// the request FRS drops to scratch and needs the most rounds to recover;
// FR² keeps accuracy but fluctuates; FATS recovers fastest with the
// smallest drop.

#include <cstdio>
#include <iostream>

#include "baselines/fr2.h"
#include "baselines/frs.h"
#include "bench_util.h"
#include "core/unlearning_executor.h"
#include "metrics/unlearning_metrics.h"
#include "util/flags.h"

namespace fats {
namespace {

using bench::FedAvgOptionsFromProfile;

struct ScenarioResult {
  TrainLog log;
  size_t request_index = 0;  // first post-unlearning record
  int64_t recomputed_rounds = 0;
};

/// The round at which the unlearning request is issued: ~60% into
/// training, where accuracy has stabilized (the paper's protocol).
int64_t IssueRound(const DatasetProfile& profile) {
  return std::max<int64_t>(1, profile.rounds_r * 3 / 5);
}

ScenarioResult RunFats(const DatasetProfile& profile, bool client_level,
                       int64_t num_requests, uint64_t seed) {
  FederatedDataset data = BuildFederatedData(profile, seed);
  FatsConfig config = FatsConfig::FromProfile(profile);
  config.seed = seed;
  FatsTrainer trainer(profile.model, config, &data);
  // Train to the issue point, serve the request batch exactly, continue.
  const int64_t t_issue = IssueRound(profile) * profile.local_iters_e;
  trainer.TrainUntil(t_issue);
  ScenarioResult result;
  result.request_index = trainer.log().records().size();
  UnlearningExecutor executor(&trainer);
  StreamId id;
  id.purpose = RngPurpose::kGeneric;
  RngStream rng(seed + 500, id);
  UnlearningSummary summary;
  if (client_level) {
    summary = executor
                  .ExecuteClientBatch(
                      PickRandomActiveClients(data, num_requests, &rng),
                      t_issue)
                  .value();
  } else {
    summary = executor
                  .ExecuteSampleBatch(
                      PickRandomActiveSamples(data, num_requests, &rng),
                      t_issue)
                  .value();
  }
  trainer.TrainUntil(config.total_iters_t());
  result.recomputed_rounds = summary.total_recomputed_rounds;
  result.log = trainer.log();
  return result;
}

ScenarioResult RunFrs(const DatasetProfile& profile, bool client_level,
                      int64_t num_requests, uint64_t seed) {
  FederatedDataset data = BuildFederatedData(profile, seed);
  FedAvgTrainer trainer(profile.model,
                        FedAvgOptionsFromProfile(profile, seed), &data);
  trainer.RunRounds(IssueRound(profile));
  ScenarioResult result;
  result.request_index = trainer.log().records().size();
  StreamId id;
  id.purpose = RngPurpose::kGeneric;
  RngStream rng(seed + 500, id);
  FrsUnlearner unlearner(&trainer, &data);
  UnlearningOutcome outcome =
      client_level
          ? unlearner
                .UnlearnClients(PickRandomActiveClients(data, num_requests,
                                                        &rng),
                                profile.rounds_r)
                .value()
          : unlearner
                .UnlearnSamples(PickRandomActiveSamples(data, num_requests,
                                                        &rng),
                                profile.rounds_r)
                .value();
  result.recomputed_rounds = outcome.recomputed_rounds;
  result.log = trainer.log();
  return result;
}

ScenarioResult RunFr2(const DatasetProfile& profile, bool client_level,
                      int64_t num_requests, uint64_t seed) {
  FederatedDataset data = BuildFederatedData(profile, seed);
  FedAvgTrainer trainer(profile.model,
                        FedAvgOptionsFromProfile(profile, seed), &data);
  trainer.RunRounds(IssueRound(profile));
  ScenarioResult result;
  result.request_index = trainer.log().records().size();
  StreamId id;
  id.purpose = RngPurpose::kGeneric;
  RngStream rng(seed + 500, id);
  Fr2Options options;
  options.recovery_rounds = std::max<int64_t>(2, profile.rounds_r / 4);
  Fr2Unlearner unlearner(&trainer, &data, options);
  UnlearningOutcome outcome =
      client_level
          ? unlearner
                .UnlearnClients(
                    PickRandomActiveClients(data, num_requests, &rng))
                .value()
          : unlearner
                .UnlearnSamples(
                    PickRandomActiveSamples(data, num_requests, &rng))
                .value();
  result.recomputed_rounds = outcome.recomputed_rounds;
  // After the approximate recovery, FR2 resumes normal training for the
  // remaining budget.
  trainer.RunRounds(profile.rounds_r - IssueRound(profile));
  result.log = trainer.log();
  return result;
}

void EmitScenario(CsvWriter* csv, const std::string& dataset,
                  const std::string& scenario, const std::string& method,
                  const ScenarioResult& result) {
  RecoveryMetrics recovery =
      AnalyzeRecovery(result.log, result.request_index);
  std::printf(
      "  %-6s %-7s: acc %.3f -> %.3f (drop %.3f), recomputed %lld rounds, "
      "recover in %lld, final %.3f\n",
      method.c_str(), scenario.c_str(), recovery.accuracy_before,
      recovery.accuracy_after_drop, recovery.accuracy_drop,
      static_cast<long long>(result.recomputed_rounds),
      static_cast<long long>(recovery.rounds_to_recover),
      recovery.final_accuracy);
  const auto& records = result.log.records();
  for (size_t i = 0; i < records.size(); ++i) {
    csv->WriteRow({dataset, scenario, method, std::to_string(i),
                   std::to_string(records[i].round),
                   FormatDouble(records[i].test_accuracy, 4),
                   records[i].recomputation ? "post" : "pre"});
  }
}

}  // namespace
}  // namespace fats

int main(int argc, char** argv) {
  using namespace fats;  // NOLINT
  FlagParser flags;
  std::string* datasets =
      flags.AddString("datasets", "all", "comma list of profiles or 'all'");
  int64_t* seed = flags.AddInt("seed", 1, "workload / algorithm seed");
  bool* print_configs =
      flags.AddBool("print_configs", true, "print Table 2 first");
  Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;  // --help
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  if (*print_configs) bench::PrintPaperTable2();

  std::vector<std::string> names = *datasets == "all"
                                       ? ScaledProfileNames()
                                       : StrSplit(*datasets, ',');
  CsvWriter csv(&std::cout, "# CSV,");
  csv.WriteHeader({"dataset", "scenario", "method", "record", "round",
                   "accuracy", "phase"});

  for (const std::string& name : names) {
    Result<DatasetProfile> profile = ScaledProfile(name);
    if (!profile.ok()) {
      std::fprintf(stderr, "skipping %s: %s\n", name.c_str(),
                   profile.status().ToString().c_str());
      continue;
    }
    const int64_t requests =
        (name == "mnist" || name == "femnist") ? 10 : 5;
    bench::PrintHeader("Figure 1 - " + name + " (" +
                       std::to_string(requests) + " simultaneous requests)");
    for (bool client_level : {false, true}) {
      const std::string scenario = client_level ? "client" : "sample";
      EmitScenario(&csv, name, scenario, "FATS",
                   RunFats(*profile, client_level, requests,
                           static_cast<uint64_t>(*seed)));
      EmitScenario(&csv, name, scenario, "FRS",
                   RunFrs(*profile, client_level, requests,
                          static_cast<uint64_t>(*seed)));
      EmitScenario(&csv, name, scenario, "FR2",
                   RunFr2(*profile, client_level, requests,
                          static_cast<uint64_t>(*seed)));
    }
  }
  return 0;
}
