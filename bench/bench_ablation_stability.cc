// Ablation: empirical verification of Lemma 1 / Theorem 1's quantitative
// content — the Monte-Carlo re-computation frequency of FATS-SU / FATS-CU
// against the TV-stability bounds min{ρ_S,1}·w and min{ρ_C,1}·w.
//
// Expected shape: the observed frequency tracks the analytic participation
// probability and never exceeds the Lemma 1 bound (up to sampling error).

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/client_unlearner.h"
#include "core/sample_unlearner.h"
#include "core/tv_stability.h"
#include "core/unlearning_executor.h"
#include "util/flags.h"

namespace fats {
namespace {

DatasetProfile SmallProfile() {
  DatasetProfile profile = ScaledProfile("mnist").value();
  profile.clients_m = 24;
  profile.samples_per_client_n = 16;
  profile.rounds_r = 4;
  profile.local_iters_e = 2;
  profile.test_size = 60;
  return profile;
}

}  // namespace
}  // namespace fats

int main(int argc, char** argv) {
  using namespace fats;  // NOLINT
  FlagParser flags;
  int64_t* trials = flags.AddInt("trials", 150, "Monte-Carlo trials");
  Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  DatasetProfile profile = SmallProfile();
  CsvWriter csv(&std::cout, "# CSV,");
  csv.WriteHeader({"level", "rho_target", "rho_effective",
                   "observed_recompute_freq", "lemma1_bound",
                   "theorem3_expected_steps", "observed_mean_steps"});

  bench::PrintHeader("Ablation: re-computation frequency vs Lemma 1 bound "
                     "(sample level)");
  for (double rho_s : {0.125, 0.25, 0.5, 1.0}) {
    int recomputes = 0;
    double steps = 0.0;
    double effective = 0.0;
    for (int64_t trial = 0; trial < *trials; ++trial) {
      FederatedDataset data =
          BuildFederatedData(profile, 60 + static_cast<uint64_t>(trial));
      FatsConfig config = FatsConfig::FromProfile(profile);
      config.rho_s = rho_s;
      config.rho_c = 0.5;
      config.seed = 60 + static_cast<uint64_t>(trial);
      FATS_CHECK_OK(config.Validate());
      effective = SampleLevelStabilityBound(config);
      FatsTrainer trainer(profile.model, config, &data);
      trainer.Train();
      StreamId id;
      id.purpose = RngPurpose::kGeneric;
      id.iteration = static_cast<uint64_t>(trial);
      RngStream rng(14, id);
      SampleUnlearner unlearner(&trainer);
      UnlearningOutcome outcome =
          unlearner
              .Unlearn(PickRandomActiveSamples(data, 1, &rng)[0],
                       config.total_iters_t())
              .value();
      if (outcome.recomputed) ++recomputes;
      steps += static_cast<double>(outcome.recomputed_iterations);
    }
    const double freq = static_cast<double>(recomputes) / *trials;
    const double theory = ExpectedUnlearningTimeSteps(
        effective, 1, profile.total_iters_t());
    std::printf("  rho_s=%.3f (eff %.3f): observed freq %.3f <= bound %.3f"
                " | mean steps %.1f (Thm 3 bound %.1f)\n",
                rho_s, effective, freq, effective, steps / *trials, theory);
    csv.WriteRow({"sample", FormatDouble(rho_s, 3),
                  FormatDouble(effective, 3), FormatDouble(freq, 4),
                  FormatDouble(effective, 4), FormatDouble(theory, 1),
                  FormatDouble(steps / *trials, 1)});
  }

  bench::PrintHeader("Ablation: re-computation frequency vs Lemma 1 bound "
                     "(client level)");
  for (double rho_c : {0.25, 0.5, 0.75, 1.0}) {
    int recomputes = 0;
    double steps = 0.0;
    double effective = 0.0;
    for (int64_t trial = 0; trial < *trials; ++trial) {
      FederatedDataset data =
          BuildFederatedData(profile, 90 + static_cast<uint64_t>(trial));
      FatsConfig config = FatsConfig::FromProfile(profile);
      config.rho_s = 0.25;
      config.rho_c = rho_c;
      config.seed = 90 + static_cast<uint64_t>(trial);
      FATS_CHECK_OK(config.Validate());
      effective = ClientLevelStabilityBound(config);
      FatsTrainer trainer(profile.model, config, &data);
      trainer.Train();
      StreamId id;
      id.purpose = RngPurpose::kGeneric;
      id.iteration = static_cast<uint64_t>(trial);
      RngStream rng(15, id);
      ClientUnlearner unlearner(&trainer);
      UnlearningOutcome outcome =
          unlearner
              .Unlearn(PickRandomActiveClients(data, 1, &rng)[0],
                       config.total_iters_t())
              .value();
      if (outcome.recomputed) ++recomputes;
      steps += static_cast<double>(outcome.recomputed_iterations);
    }
    const double freq = static_cast<double>(recomputes) / *trials;
    const double theory = ExpectedUnlearningTimeSteps(
        effective, 1, profile.total_iters_t());
    std::printf("  rho_c=%.3f (eff %.3f): observed freq %.3f <= bound %.3f"
                " | mean steps %.1f (Thm 3 bound %.1f)\n",
                rho_c, effective, freq, effective, steps / *trials, theory);
    csv.WriteRow({"client", FormatDouble(rho_c, 3),
                  FormatDouble(effective, 3), FormatDouble(freq, 4),
                  FormatDouble(effective, 4), FormatDouble(theory, 1),
                  FormatDouble(steps / *trials, 1)});
  }
  return 0;
}
