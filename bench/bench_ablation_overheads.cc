// Ablation (§5.3): time and space overheads of the unlearning machinery.
//
//   * Space: the full StateStore (O(T·max{b,d}) per device, O(R·max{K,d})
//     at the server) versus the compact participation index (O(N+d) /
//     O(M+d) bits+words) across the scaled profiles.
//   * Time: the O(1) verification lookups (earliest-use dictionaries),
//     measured over millions of queries.
//   * Communication: bytes per training round and per re-computed round.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/fats_trainer.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace fats {
namespace {

int64_t CompactBytes(const FederatedDataset& data, int64_t model_params) {
  std::vector<int64_t> samples_per_client;
  for (int64_t k = 0; k < data.num_clients(); ++k) {
    samples_per_client.push_back(data.samples_of(k));
  }
  CompactParticipationIndex index(data.num_clients(), samples_per_client);
  // Plus one model copy per device and at the server (the §5.3.2 scheme).
  return index.ApproxBytes() + (data.num_clients() + 1) * model_params * 4;
}

}  // namespace
}  // namespace fats

int main(int argc, char** argv) {
  using namespace fats;  // NOLINT
  FlagParser flags;
  int64_t* lookups = flags.AddInt("lookups", 2000000,
                                  "verification lookups to time");
  Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  CsvWriter csv(&std::cout, "# CSV,");
  csv.WriteHeader({"profile", "model_params", "full_store_bytes",
                   "compact_bytes", "verify_ns_per_lookup",
                   "bytes_per_round"});

  bench::PrintHeader("Ablation: state-store space & verification time");
  std::printf("%-12s %10s %16s %14s %12s %14s\n", "profile", "params",
              "full store B", "compact B", "verify ns", "bytes/round");

  for (const std::string& name : ScaledProfileNames()) {
    DatasetProfile profile = ScaledProfile(name).value();
    profile = bench::ShrinkProfile(profile, 2);
    FederatedDataset data = BuildFederatedData(profile, 1);
    FatsConfig config = FatsConfig::FromProfile(profile);
    config.seed = 5;
    FatsTrainer trainer(profile.model, config, &data);
    trainer.Train();

    const int64_t model_params = trainer.model()->NumParameters();
    const int64_t full_bytes = trainer.store().ApproxBytes();
    const int64_t compact_bytes = CompactBytes(data, model_params);
    const int64_t bytes_per_round =
        trainer.comm_stats().total_bytes() / trainer.comm_stats().rounds();

    // Time the O(1) verification lookup.
    Stopwatch timer;
    int64_t hits = 0;
    for (int64_t i = 0; i < *lookups; ++i) {
      SampleRef ref{i % profile.clients_m,
                    i % profile.samples_per_client_n};
      hits += trainer.store().EarliestSampleUse(ref) >= 0 ? 1 : 0;
    }
    const double ns_per_lookup =
        timer.ElapsedSeconds() * 1e9 / static_cast<double>(*lookups);

    std::printf("%-12s %10lld %16lld %14lld %12.1f %14lld\n", name.c_str(),
                static_cast<long long>(model_params),
                static_cast<long long>(full_bytes),
                static_cast<long long>(compact_bytes), ns_per_lookup,
                static_cast<long long>(bytes_per_round));
    csv.WriteRow({name, std::to_string(model_params),
                  std::to_string(full_bytes), std::to_string(compact_bytes),
                  FormatDouble(ns_per_lookup, 1),
                  std::to_string(bytes_per_round)});
    if (hits < 0) std::printf("unreachable\n");  // keep `hits` live
  }

  std::printf(
      "\nThe full store buys mid-stream re-computation (restart at t_S); the"
      "\ncompact index pays a full retrain on a hit but needs only "
      "participation bits\n(same asymptotic unlearning time, Theorem 3).\n");
  return 0;
}
