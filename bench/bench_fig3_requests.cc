// Figure 3: impact of the number of unlearning requests on unlearning
// efficiency (client-level), FEMNIST-like and Shakespeare-like profiles.
//
// For K in {2,...,10} (each K implies a different ρ_C) and request counts
// w = 1..10, issue w sequential client deletions and measure the total
// unlearning time in time steps. FRS pays w full retrains.
//
// Expected shape: time grows with w at fixed ρ_C, grows with ρ_C at fixed
// w, and stays below FRS for suitable K — matching Theorem 3's
// O(max{min(ρ_C,1)·w·T, w}).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/unlearning_executor.h"
#include "core/tv_stability.h"
#include "util/flags.h"

namespace fats {
namespace {

DatasetProfile SweepProfile(const std::string& name) {
  DatasetProfile profile = ScaledProfile(name).value();
  if (name == "femnist") {
    profile.clients_m = 100;
    profile.samples_per_client_n = 20;
    profile.rounds_r = 8;
    profile.local_iters_e = 2;
    profile.test_size = 160;
  } else {
    profile.clients_m = 60;
    profile.samples_per_client_n = 24;
    profile.rounds_r = 5;
    profile.local_iters_e = 3;
    profile.test_size = 120;
  }
  return profile;
}

}  // namespace
}  // namespace fats

int main(int argc, char** argv) {
  using namespace fats;  // NOLINT
  FlagParser flags;
  int64_t* trials = flags.AddInt("trials", 3, "trials per (K, w) point");
  int64_t* max_requests = flags.AddInt("max_requests", 10,
                                       "largest request count w");
  Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  CsvWriter csv(&std::cout, "# CSV,");
  csv.WriteHeader({"dataset", "k", "rho_c", "requests_w", "method",
                   "mean_total_unlearning_steps", "mean_replayed_steps",
                   "theory_bound_steps"});

  for (const std::string name : {"femnist", "shakespeare"}) {
    DatasetProfile profile = SweepProfile(name);
    const int64_t t_total = profile.total_iters_t();
    bench::PrintHeader("Figure 3 - " + name +
                       " client-level unlearning time vs #requests "
                       "(T = " + std::to_string(t_total) + ")");
    for (int64_t k : {2, 4, 6, 8, 10}) {
      FatsConfig base =
          bench::FatsConfigWithKB(profile, k, profile.batch_b, 1);
      if (base.rho_c > 1.0 || base.rho_s > 1.0 || !base.Validate().ok()) {
        std::printf("  K=%lld infeasible (rho_c=%.2f rho_s=%.2f), skipped\n",
                    static_cast<long long>(k), base.rho_c, base.rho_s);
        continue;
      }
      std::string line = StrFormat("  K=%lld (rho_c=%.2f):",
                                   static_cast<long long>(k), base.rho_c);
      for (int64_t w = 1; w <= *max_requests; ++w) {
        double total_steps = 0.0;
        double replayed_steps = 0.0;
        for (int trial = 0; trial < *trials; ++trial) {
          FederatedDataset data = BuildFederatedData(
              profile, 10 + static_cast<uint64_t>(trial));
          FatsConfig config = base;
          config.seed = 10 + static_cast<uint64_t>(trial);
          FatsTrainer trainer(profile.model, config, &data);
          trainer.Train();
          StreamId id;
          id.purpose = RngPurpose::kGeneric;
          id.iteration = static_cast<uint64_t>(trial * 100 + w);
          RngStream rng(77, id);
          std::vector<int64_t> targets =
              PickRandomActiveClients(data, w, &rng);
          UnlearningExecutor executor(&trainer);
          std::vector<UnlearningRequest> stream;
          for (int64_t target : targets) {
            UnlearningRequest request;
            request.kind = UnlearningRequest::Kind::kClient;
            request.client = target;
            request.request_iter = config.total_iters_t();
            stream.push_back(request);
          }
          const UnlearningSummary summary =
              executor.ExecuteStream(stream).value();
          // Triggered work (Theorem 3's quantity) and replayed work (what the
          // machine actually recomputed, including untriggered rewrites) are
          // tracked separately; reporting only the former under-counted w.
          total_steps +=
              static_cast<double>(summary.total_recomputed_iterations);
          replayed_steps +=
              static_cast<double>(summary.total_replayed_iterations);
        }
        const double mean_steps = total_steps / *trials;
        const double mean_replayed = replayed_steps / *trials;
        const double theory =
            ExpectedUnlearningTimeSteps(base.EffectiveRhoC(), w, t_total);
        line += StrFormat(" w=%lld:%.0f", static_cast<long long>(w),
                          mean_steps);
        csv.WriteRow({name, std::to_string(k),
                      FormatDouble(base.EffectiveRhoC(), 3),
                      std::to_string(w), "FATS", FormatDouble(mean_steps, 1),
                      FormatDouble(mean_replayed, 1),
                      FormatDouble(theory, 1)});
        csv.WriteRow({name, std::to_string(k),
                      FormatDouble(base.EffectiveRhoC(), 3),
                      std::to_string(w), "FRS",
                      std::to_string(w * t_total),
                      std::to_string(w * t_total),
                      std::to_string(w * t_total)});
      }
      std::printf("%s  | FRS: w*%lld\n", line.c_str(),
                  static_cast<long long>(t_total));
    }
  }
  return 0;
}
