// Figure 4 (+ Figure 7): learning utility vs unlearning efficiency on the
// MNIST-like and Fashion-MNIST-like profiles.
//
// Row 1: sweep ρ_S (0.125 -> 1) at fixed ρ_C: accuracy rises then plateaus;
// average sample-unlearning time rises with ρ_S.
// Row 2: sweep ρ_C (0.2/0.33 -> 1) at fixed ρ_S: accuracy rises then
// flattens past ~0.5 while client-unlearning time keeps rising — an optimal
// trade-off around ρ_C ≈ 0.5.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/client_unlearner.h"
#include "core/sample_unlearner.h"
#include "core/unlearning_executor.h"
#include "util/flags.h"

namespace fats {
namespace {

DatasetProfile SweepProfile(const std::string& name) {
  DatasetProfile profile = ScaledProfile(name).value();
  profile.clients_m = 48;
  profile.rounds_r = 8;
  profile.local_iters_e = 3;
  profile.test_size = 200;
  return profile;
}

struct TradeoffPoint {
  double accuracy = 0.0;
  double unlearning_steps = 0.0;
};

TradeoffPoint MeasurePoint(const DatasetProfile& profile, double rho_s,
                           double rho_c, bool client_level, int trials) {
  TradeoffPoint point;
  for (int trial = 0; trial < trials; ++trial) {
    FederatedDataset data =
        BuildFederatedData(profile, 40 + static_cast<uint64_t>(trial));
    FatsConfig config = FatsConfig::FromProfile(profile);
    config.rho_s = rho_s;
    config.rho_c = rho_c;
    config.seed = 40 + static_cast<uint64_t>(trial);
    FATS_CHECK_OK(config.Validate());
    FatsTrainer trainer(profile.model, config, &data);
    trainer.Train();
    point.accuracy += trainer.EvaluateTestAccuracy();
    StreamId id;
    id.purpose = RngPurpose::kGeneric;
    id.iteration = static_cast<uint64_t>(trial);
    RngStream rng(33, id);
    if (client_level) {
      ClientUnlearner unlearner(&trainer);
      point.unlearning_steps += static_cast<double>(
          unlearner
              .Unlearn(PickRandomActiveClients(data, 1, &rng)[0],
                       config.total_iters_t())
              .value()
              .recomputed_iterations);
    } else {
      SampleUnlearner unlearner(&trainer);
      point.unlearning_steps += static_cast<double>(
          unlearner
              .Unlearn(PickRandomActiveSamples(data, 1, &rng)[0],
                       config.total_iters_t())
              .value()
              .recomputed_iterations);
    }
  }
  point.accuracy /= trials;
  point.unlearning_steps /= trials;
  return point;
}

}  // namespace
}  // namespace fats

int main(int argc, char** argv) {
  using namespace fats;  // NOLINT
  FlagParser flags;
  int64_t* trials = flags.AddInt("trials", 12, "trials per sweep point");
  Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  CsvWriter csv(&std::cout, "# CSV,");
  csv.WriteHeader({"dataset", "sweep", "rho_s", "rho_c", "accuracy",
                   "mean_unlearning_steps"});

  for (const std::string name : {"mnist", "fashion"}) {
    DatasetProfile profile = SweepProfile(name);
    bench::PrintHeader("Figure 4 - " + name +
                       ": accuracy & unlearning time vs rho_S (rho_C=0.5)");
    for (double rho_s : {0.125, 0.25, 0.5, 0.75, 1.0}) {
      TradeoffPoint point = MeasurePoint(profile, rho_s, 0.5,
                                         /*client_level=*/false,
                                         static_cast<int>(*trials));
      std::printf("  rho_s=%.3f: accuracy %.3f, unlearning %.1f steps\n",
                  rho_s, point.accuracy, point.unlearning_steps);
      csv.WriteRow({name, "rho_s", FormatDouble(rho_s, 3), "0.5",
                    FormatDouble(point.accuracy, 4),
                    FormatDouble(point.unlearning_steps, 2)});
    }
    bench::PrintHeader("Figure 4 - " + name +
                       ": accuracy & unlearning time vs rho_C (rho_S=0.25)");
    for (double rho_c : {0.2, 0.33, 0.5, 0.75, 1.0}) {
      TradeoffPoint point = MeasurePoint(profile, 0.25, rho_c,
                                         /*client_level=*/true,
                                         static_cast<int>(*trials));
      std::printf("  rho_c=%.3f: accuracy %.3f, unlearning %.1f steps\n",
                  rho_c, point.accuracy, point.unlearning_steps);
      csv.WriteRow({name, "rho_c", "0.25", FormatDouble(rho_c, 3),
                    FormatDouble(point.accuracy, 4),
                    FormatDouble(point.unlearning_steps, 2)});
    }
  }
  return 0;
}
