// Figure 8 (Appendix A.5): streaming unlearning — sequential deletion
// requests arriving one at a time — on the MNIST-like and FEMNIST-like
// profiles, for FATS, FRS, and FR².
//
// Expected shape: FATS's accuracy stays nearly flat across the stream (most
// requests need little or no re-computation and the recovered model is
// exact); FRS dips to scratch on every request; FR² stays up but drifts /
// fluctuates because the deletions are only approximately absorbed.

#include <cstdio>
#include <iostream>

#include "baselines/fr2.h"
#include "baselines/frs.h"
#include "bench_util.h"
#include "core/unlearning_executor.h"
#include "util/flags.h"

namespace fats {
namespace {

using bench::FedAvgOptionsFromProfile;

struct StreamPlan {
  std::vector<SampleRef> samples;
  std::vector<int64_t> clients;
};

/// An alternating stream: sample, client, sample, client, ...
StreamPlan MakePlan(const FederatedDataset& data, int64_t pairs,
                    uint64_t seed) {
  StreamPlan plan;
  StreamId id;
  id.purpose = RngPurpose::kGeneric;
  RngStream rng(seed, id);
  plan.clients = PickRandomActiveClients(data, pairs, &rng);
  // Samples owned by surviving clients only.
  while (static_cast<int64_t>(plan.samples.size()) < pairs) {
    SampleRef ref = PickRandomActiveSamples(data, 1, &rng)[0];
    bool owned_by_departing = false;
    for (int64_t k : plan.clients) {
      owned_by_departing = owned_by_departing || ref.client == k;
    }
    bool duplicate = false;
    for (const SampleRef& existing : plan.samples) {
      duplicate = duplicate || existing == ref;
    }
    if (!owned_by_departing && !duplicate) plan.samples.push_back(ref);
  }
  return plan;
}

}  // namespace
}  // namespace fats

int main(int argc, char** argv) {
  using namespace fats;  // NOLINT
  FlagParser flags;
  int64_t* pairs = flags.AddInt("pairs", 3,
                                "number of (sample, client) request pairs");
  int64_t* seed = flags.AddInt("seed", 4, "workload seed");
  Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  CsvWriter csv(&std::cout, "# CSV,");
  csv.WriteHeader({"dataset", "method", "request_index", "request_kind",
                   "accuracy_after", "recompute_rounds"});

  for (const std::string name : {"mnist", "femnist"}) {
    DatasetProfile profile = ScaledProfile(name).value();
    profile = bench::ShrinkProfile(profile, 2);
    bench::PrintHeader("Figure 8 - " + name + " streaming requests (" +
                       std::to_string(2 * *pairs) + " alternating)");

    // The request plan is fixed across methods for comparability.
    FederatedDataset plan_data =
        BuildFederatedData(profile, static_cast<uint64_t>(*seed));
    StreamPlan plan = MakePlan(plan_data, *pairs,
                               static_cast<uint64_t>(*seed) + 7);

    // ---------------- FATS ----------------
    {
      FederatedDataset data =
          BuildFederatedData(profile, static_cast<uint64_t>(*seed));
      FatsConfig config = FatsConfig::FromProfile(profile);
      config.seed = static_cast<uint64_t>(*seed);
      FatsTrainer trainer(profile.model, config, &data);
      trainer.Train();
      UnlearningExecutor executor(&trainer);
      int64_t total_rounds = 0;
      std::string line =
          StrFormat("  FATS: start %.3f |", trainer.EvaluateTestAccuracy());
      for (int64_t i = 0; i < *pairs; ++i) {
        UnlearningRequest sample_request;
        sample_request.kind = UnlearningRequest::Kind::kSample;
        sample_request.sample = plan.samples[static_cast<size_t>(i)];
        sample_request.request_iter = config.total_iters_t();
        UnlearningSummary s1 =
            executor.ExecuteStream({sample_request}).value();
        total_rounds += s1.total_recomputed_rounds;
        line += StrFormat(" s:%.3f", trainer.EvaluateTestAccuracy());
        csv.WriteRow({name, "FATS", std::to_string(2 * i), "sample",
                      FormatDouble(trainer.EvaluateTestAccuracy(), 4),
                      std::to_string(s1.total_recomputed_rounds)});
        UnlearningRequest client_request;
        client_request.kind = UnlearningRequest::Kind::kClient;
        client_request.client = plan.clients[static_cast<size_t>(i)];
        client_request.request_iter = config.total_iters_t();
        UnlearningSummary s2 =
            executor.ExecuteStream({client_request}).value();
        total_rounds += s2.total_recomputed_rounds;
        line += StrFormat(" c:%.3f", trainer.EvaluateTestAccuracy());
        csv.WriteRow({name, "FATS", std::to_string(2 * i + 1), "client",
                      FormatDouble(trainer.EvaluateTestAccuracy(), 4),
                      std::to_string(s2.total_recomputed_rounds)});
      }
      std::printf("%s | recomputed %lld rounds total\n", line.c_str(),
                  static_cast<long long>(total_rounds));
    }

    // ---------------- FRS ----------------
    {
      FederatedDataset data =
          BuildFederatedData(profile, static_cast<uint64_t>(*seed));
      FedAvgTrainer trainer(
          profile.model,
          FedAvgOptionsFromProfile(profile, static_cast<uint64_t>(*seed)),
          &data);
      trainer.RunRounds(profile.rounds_r);
      FrsUnlearner unlearner(&trainer, &data);
      std::string line =
          StrFormat("  FRS : start %.3f |", trainer.EvaluateTestAccuracy());
      for (int64_t i = 0; i < *pairs; ++i) {
        FATS_CHECK(unlearner
                       .UnlearnSamples({plan.samples[static_cast<size_t>(i)]},
                                       profile.rounds_r)
                       .ok());
        line += StrFormat(" s:%.3f", trainer.EvaluateTestAccuracy());
        csv.WriteRow({name, "FRS", std::to_string(2 * i), "sample",
                      FormatDouble(trainer.EvaluateTestAccuracy(), 4),
                      std::to_string(profile.rounds_r)});
        FATS_CHECK(unlearner
                       .UnlearnClients({plan.clients[static_cast<size_t>(i)]},
                                       profile.rounds_r)
                       .ok());
        line += StrFormat(" c:%.3f", trainer.EvaluateTestAccuracy());
        csv.WriteRow({name, "FRS", std::to_string(2 * i + 1), "client",
                      FormatDouble(trainer.EvaluateTestAccuracy(), 4),
                      std::to_string(profile.rounds_r)});
      }
      std::printf("%s | recomputed %lld rounds total\n", line.c_str(),
                  static_cast<long long>(2 * *pairs * profile.rounds_r));
    }

    // ---------------- FR2 ----------------
    {
      FederatedDataset data =
          BuildFederatedData(profile, static_cast<uint64_t>(*seed));
      FedAvgTrainer trainer(
          profile.model,
          FedAvgOptionsFromProfile(profile, static_cast<uint64_t>(*seed)),
          &data);
      trainer.RunRounds(profile.rounds_r);
      Fr2Options options;
      options.recovery_rounds = std::max<int64_t>(2, profile.rounds_r / 4);
      Fr2Unlearner unlearner(&trainer, &data, options);
      std::string line =
          StrFormat("  FR2 : start %.3f |", trainer.EvaluateTestAccuracy());
      for (int64_t i = 0; i < *pairs; ++i) {
        FATS_CHECK(
            unlearner.UnlearnSamples({plan.samples[static_cast<size_t>(i)]})
                .ok());
        line += StrFormat(" s:%.3f", trainer.EvaluateTestAccuracy());
        csv.WriteRow({name, "FR2", std::to_string(2 * i), "sample",
                      FormatDouble(trainer.EvaluateTestAccuracy(), 4),
                      std::to_string(options.recovery_rounds)});
        FATS_CHECK(
            unlearner.UnlearnClients({plan.clients[static_cast<size_t>(i)]})
                .ok());
        line += StrFormat(" c:%.3f", trainer.EvaluateTestAccuracy());
        csv.WriteRow({name, "FR2", std::to_string(2 * i + 1), "client",
                      FormatDouble(trainer.EvaluateTestAccuracy(), 4),
                      std::to_string(options.recovery_rounds)});
      }
      std::printf("%s | recovery %lld rounds total (approximate)\n",
                  line.c_str(),
                  static_cast<long long>(2 * *pairs *
                                         options.recovery_rounds));
    }
  }
  return 0;
}
