file(REMOVE_RECURSE
  "CMakeFiles/fats_cli.dir/fats_cli.cc.o"
  "CMakeFiles/fats_cli.dir/fats_cli.cc.o.d"
  "fats_cli"
  "fats_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fats_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
