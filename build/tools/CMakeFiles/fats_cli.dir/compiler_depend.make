# Empty compiler generated dependencies file for fats_cli.
# This may be replaced when dependencies are built.
