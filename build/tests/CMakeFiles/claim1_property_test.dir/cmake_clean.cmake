file(REMOVE_RECURSE
  "CMakeFiles/claim1_property_test.dir/claim1_property_test.cc.o"
  "CMakeFiles/claim1_property_test.dir/claim1_property_test.cc.o.d"
  "claim1_property_test"
  "claim1_property_test.pdb"
  "claim1_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim1_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
