file(REMOVE_RECURSE
  "CMakeFiles/synthetic_data_test.dir/synthetic_data_test.cc.o"
  "CMakeFiles/synthetic_data_test.dir/synthetic_data_test.cc.o.d"
  "synthetic_data_test"
  "synthetic_data_test.pdb"
  "synthetic_data_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
