# Empty compiler generated dependencies file for federated_dataset_test.
# This may be replaced when dependencies are built.
