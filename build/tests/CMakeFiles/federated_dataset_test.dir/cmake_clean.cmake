file(REMOVE_RECURSE
  "CMakeFiles/federated_dataset_test.dir/federated_dataset_test.cc.o"
  "CMakeFiles/federated_dataset_test.dir/federated_dataset_test.cc.o.d"
  "federated_dataset_test"
  "federated_dataset_test.pdb"
  "federated_dataset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
