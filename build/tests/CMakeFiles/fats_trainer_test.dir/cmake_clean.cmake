file(REMOVE_RECURSE
  "CMakeFiles/fats_trainer_test.dir/fats_trainer_test.cc.o"
  "CMakeFiles/fats_trainer_test.dir/fats_trainer_test.cc.o.d"
  "fats_trainer_test"
  "fats_trainer_test.pdb"
  "fats_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fats_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
