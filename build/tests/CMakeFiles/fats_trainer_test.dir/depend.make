# Empty dependencies file for fats_trainer_test.
# This may be replaced when dependencies are built.
