# Empty compiler generated dependencies file for mia_test.
# This may be replaced when dependencies are built.
