file(REMOVE_RECURSE
  "CMakeFiles/philox_test.dir/philox_test.cc.o"
  "CMakeFiles/philox_test.dir/philox_test.cc.o.d"
  "philox_test"
  "philox_test.pdb"
  "philox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/philox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
