# Empty compiler generated dependencies file for philox_test.
# This may be replaced when dependencies are built.
