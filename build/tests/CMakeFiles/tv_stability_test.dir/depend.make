# Empty dependencies file for tv_stability_test.
# This may be replaced when dependencies are built.
