file(REMOVE_RECURSE
  "CMakeFiles/tv_stability_test.dir/tv_stability_test.cc.o"
  "CMakeFiles/tv_stability_test.dir/tv_stability_test.cc.o.d"
  "tv_stability_test"
  "tv_stability_test.pdb"
  "tv_stability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_stability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
