file(REMOVE_RECURSE
  "CMakeFiles/fats_config_test.dir/fats_config_test.cc.o"
  "CMakeFiles/fats_config_test.dir/fats_config_test.cc.o.d"
  "fats_config_test"
  "fats_config_test.pdb"
  "fats_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fats_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
