# Empty dependencies file for fats_config_test.
# This may be replaced when dependencies are built.
