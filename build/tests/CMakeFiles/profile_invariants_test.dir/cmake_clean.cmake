file(REMOVE_RECURSE
  "CMakeFiles/profile_invariants_test.dir/profile_invariants_test.cc.o"
  "CMakeFiles/profile_invariants_test.dir/profile_invariants_test.cc.o.d"
  "profile_invariants_test"
  "profile_invariants_test.pdb"
  "profile_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
