file(REMOVE_RECURSE
  "CMakeFiles/streaming_midtraining_test.dir/streaming_midtraining_test.cc.o"
  "CMakeFiles/streaming_midtraining_test.dir/streaming_midtraining_test.cc.o.d"
  "streaming_midtraining_test"
  "streaming_midtraining_test.pdb"
  "streaming_midtraining_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_midtraining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
