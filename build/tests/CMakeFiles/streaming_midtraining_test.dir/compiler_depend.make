# Empty compiler generated dependencies file for streaming_midtraining_test.
# This may be replaced when dependencies are built.
