file(REMOVE_RECURSE
  "CMakeFiles/client_unlearner_test.dir/client_unlearner_test.cc.o"
  "CMakeFiles/client_unlearner_test.dir/client_unlearner_test.cc.o.d"
  "client_unlearner_test"
  "client_unlearner_test.pdb"
  "client_unlearner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_unlearner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
