# Empty compiler generated dependencies file for client_unlearner_test.
# This may be replaced when dependencies are built.
