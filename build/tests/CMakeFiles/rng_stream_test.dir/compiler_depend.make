# Empty compiler generated dependencies file for rng_stream_test.
# This may be replaced when dependencies are built.
