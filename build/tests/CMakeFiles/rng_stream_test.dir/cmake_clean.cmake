file(REMOVE_RECURSE
  "CMakeFiles/rng_stream_test.dir/rng_stream_test.cc.o"
  "CMakeFiles/rng_stream_test.dir/rng_stream_test.cc.o.d"
  "rng_stream_test"
  "rng_stream_test.pdb"
  "rng_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rng_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
