# Empty dependencies file for exact_unlearning_property_test.
# This may be replaced when dependencies are built.
