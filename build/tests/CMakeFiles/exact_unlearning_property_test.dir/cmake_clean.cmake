file(REMOVE_RECURSE
  "CMakeFiles/exact_unlearning_property_test.dir/exact_unlearning_property_test.cc.o"
  "CMakeFiles/exact_unlearning_property_test.dir/exact_unlearning_property_test.cc.o.d"
  "exact_unlearning_property_test"
  "exact_unlearning_property_test.pdb"
  "exact_unlearning_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_unlearning_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
