file(REMOVE_RECURSE
  "CMakeFiles/gradient_diversity_test.dir/gradient_diversity_test.cc.o"
  "CMakeFiles/gradient_diversity_test.dir/gradient_diversity_test.cc.o.d"
  "gradient_diversity_test"
  "gradient_diversity_test.pdb"
  "gradient_diversity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradient_diversity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
