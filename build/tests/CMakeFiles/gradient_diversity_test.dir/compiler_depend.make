# Empty compiler generated dependencies file for gradient_diversity_test.
# This may be replaced when dependencies are built.
