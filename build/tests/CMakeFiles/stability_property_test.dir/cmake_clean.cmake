file(REMOVE_RECURSE
  "CMakeFiles/stability_property_test.dir/stability_property_test.cc.o"
  "CMakeFiles/stability_property_test.dir/stability_property_test.cc.o.d"
  "stability_property_test"
  "stability_property_test.pdb"
  "stability_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stability_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
