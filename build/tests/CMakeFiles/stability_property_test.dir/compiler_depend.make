# Empty compiler generated dependencies file for stability_property_test.
# This may be replaced when dependencies are built.
