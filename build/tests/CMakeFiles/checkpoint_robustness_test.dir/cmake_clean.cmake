file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_robustness_test.dir/checkpoint_robustness_test.cc.o"
  "CMakeFiles/checkpoint_robustness_test.dir/checkpoint_robustness_test.cc.o.d"
  "checkpoint_robustness_test"
  "checkpoint_robustness_test.pdb"
  "checkpoint_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
