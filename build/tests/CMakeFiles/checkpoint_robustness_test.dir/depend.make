# Empty dependencies file for checkpoint_robustness_test.
# This may be replaced when dependencies are built.
