file(REMOVE_RECURSE
  "CMakeFiles/unlearning_executor_test.dir/unlearning_executor_test.cc.o"
  "CMakeFiles/unlearning_executor_test.dir/unlearning_executor_test.cc.o.d"
  "unlearning_executor_test"
  "unlearning_executor_test.pdb"
  "unlearning_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unlearning_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
