# Empty compiler generated dependencies file for unlearning_executor_test.
# This may be replaced when dependencies are built.
