file(REMOVE_RECURSE
  "CMakeFiles/paper_configs_test.dir/paper_configs_test.cc.o"
  "CMakeFiles/paper_configs_test.dir/paper_configs_test.cc.o.d"
  "paper_configs_test"
  "paper_configs_test.pdb"
  "paper_configs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_configs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
