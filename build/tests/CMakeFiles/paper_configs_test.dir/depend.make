# Empty dependencies file for paper_configs_test.
# This may be replaced when dependencies are built.
