file(REMOVE_RECURSE
  "CMakeFiles/midtraining_test.dir/midtraining_test.cc.o"
  "CMakeFiles/midtraining_test.dir/midtraining_test.cc.o.d"
  "midtraining_test"
  "midtraining_test.pdb"
  "midtraining_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midtraining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
