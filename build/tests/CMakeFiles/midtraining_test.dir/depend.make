# Empty dependencies file for midtraining_test.
# This may be replaced when dependencies are built.
