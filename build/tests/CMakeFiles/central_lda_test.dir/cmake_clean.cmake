file(REMOVE_RECURSE
  "CMakeFiles/central_lda_test.dir/central_lda_test.cc.o"
  "CMakeFiles/central_lda_test.dir/central_lda_test.cc.o.d"
  "central_lda_test"
  "central_lda_test.pdb"
  "central_lda_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/central_lda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
