# Empty dependencies file for central_lda_test.
# This may be replaced when dependencies are built.
