# Empty compiler generated dependencies file for comm_stats_test.
# This may be replaced when dependencies are built.
