file(REMOVE_RECURSE
  "CMakeFiles/comm_stats_test.dir/comm_stats_test.cc.o"
  "CMakeFiles/comm_stats_test.dir/comm_stats_test.cc.o.d"
  "comm_stats_test"
  "comm_stats_test.pdb"
  "comm_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
