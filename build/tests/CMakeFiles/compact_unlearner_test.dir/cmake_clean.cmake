file(REMOVE_RECURSE
  "CMakeFiles/compact_unlearner_test.dir/compact_unlearner_test.cc.o"
  "CMakeFiles/compact_unlearner_test.dir/compact_unlearner_test.cc.o.d"
  "compact_unlearner_test"
  "compact_unlearner_test.pdb"
  "compact_unlearner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compact_unlearner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
