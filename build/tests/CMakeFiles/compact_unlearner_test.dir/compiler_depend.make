# Empty compiler generated dependencies file for compact_unlearner_test.
# This may be replaced when dependencies are built.
