file(REMOVE_RECURSE
  "CMakeFiles/fats_replay_test.dir/fats_replay_test.cc.o"
  "CMakeFiles/fats_replay_test.dir/fats_replay_test.cc.o.d"
  "fats_replay_test"
  "fats_replay_test.pdb"
  "fats_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fats_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
