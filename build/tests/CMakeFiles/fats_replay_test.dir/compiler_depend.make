# Empty compiler generated dependencies file for fats_replay_test.
# This may be replaced when dependencies are built.
