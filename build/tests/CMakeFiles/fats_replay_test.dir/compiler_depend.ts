# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fats_replay_test.
