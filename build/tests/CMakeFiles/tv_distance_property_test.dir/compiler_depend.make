# Empty compiler generated dependencies file for tv_distance_property_test.
# This may be replaced when dependencies are built.
