file(REMOVE_RECURSE
  "CMakeFiles/tv_distance_property_test.dir/tv_distance_property_test.cc.o"
  "CMakeFiles/tv_distance_property_test.dir/tv_distance_property_test.cc.o.d"
  "tv_distance_property_test"
  "tv_distance_property_test.pdb"
  "tv_distance_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_distance_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
