# Empty dependencies file for sample_unlearner_test.
# This may be replaced when dependencies are built.
