file(REMOVE_RECURSE
  "CMakeFiles/sample_unlearner_test.dir/sample_unlearner_test.cc.o"
  "CMakeFiles/sample_unlearner_test.dir/sample_unlearner_test.cc.o.d"
  "sample_unlearner_test"
  "sample_unlearner_test.pdb"
  "sample_unlearner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_unlearner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
