file(REMOVE_RECURSE
  "CMakeFiles/fr2_details_test.dir/fr2_details_test.cc.o"
  "CMakeFiles/fr2_details_test.dir/fr2_details_test.cc.o.d"
  "fr2_details_test"
  "fr2_details_test.pdb"
  "fr2_details_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fr2_details_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
