# Empty compiler generated dependencies file for fr2_details_test.
# This may be replaced when dependencies are built.
