file(REMOVE_RECURSE
  "CMakeFiles/hospital_sample_unlearning.dir/hospital_sample_unlearning.cpp.o"
  "CMakeFiles/hospital_sample_unlearning.dir/hospital_sample_unlearning.cpp.o.d"
  "hospital_sample_unlearning"
  "hospital_sample_unlearning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_sample_unlearning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
