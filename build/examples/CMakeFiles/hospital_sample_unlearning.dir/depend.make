# Empty dependencies file for hospital_sample_unlearning.
# This may be replaced when dependencies are built.
