# Empty dependencies file for poisoning_recovery.
# This may be replaced when dependencies are built.
