file(REMOVE_RECURSE
  "CMakeFiles/poisoning_recovery.dir/poisoning_recovery.cpp.o"
  "CMakeFiles/poisoning_recovery.dir/poisoning_recovery.cpp.o.d"
  "poisoning_recovery"
  "poisoning_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisoning_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
