file(REMOVE_RECURSE
  "CMakeFiles/device_churn_client_unlearning.dir/device_churn_client_unlearning.cpp.o"
  "CMakeFiles/device_churn_client_unlearning.dir/device_churn_client_unlearning.cpp.o.d"
  "device_churn_client_unlearning"
  "device_churn_client_unlearning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_churn_client_unlearning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
