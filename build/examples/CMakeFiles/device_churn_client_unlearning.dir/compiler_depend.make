# Empty compiler generated dependencies file for device_churn_client_unlearning.
# This may be replaced when dependencies are built.
