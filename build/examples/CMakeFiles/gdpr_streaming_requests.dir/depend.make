# Empty dependencies file for gdpr_streaming_requests.
# This may be replaced when dependencies are built.
