file(REMOVE_RECURSE
  "CMakeFiles/gdpr_streaming_requests.dir/gdpr_streaming_requests.cpp.o"
  "CMakeFiles/gdpr_streaming_requests.dir/gdpr_streaming_requests.cpp.o.d"
  "gdpr_streaming_requests"
  "gdpr_streaming_requests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdpr_streaming_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
