# Empty dependencies file for bench_ablation_local_steps.
# This may be replaced when dependencies are built.
