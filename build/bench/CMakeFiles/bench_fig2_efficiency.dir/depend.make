# Empty dependencies file for bench_fig2_efficiency.
# This may be replaced when dependencies are built.
