# Empty dependencies file for bench_table1_mia.
# This may be replaced when dependencies are built.
