file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_mia.dir/bench_table1_mia.cc.o"
  "CMakeFiles/bench_table1_mia.dir/bench_table1_mia.cc.o.d"
  "bench_table1_mia"
  "bench_table1_mia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
