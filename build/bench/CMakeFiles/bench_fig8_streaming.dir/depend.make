# Empty dependencies file for bench_fig8_streaming.
# This may be replaced when dependencies are built.
