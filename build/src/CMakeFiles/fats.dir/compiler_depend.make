# Empty compiler generated dependencies file for fats.
# This may be replaced when dependencies are built.
