
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/mia.cc" "src/CMakeFiles/fats.dir/attack/mia.cc.o" "gcc" "src/CMakeFiles/fats.dir/attack/mia.cc.o.d"
  "/root/repo/src/baselines/fr2.cc" "src/CMakeFiles/fats.dir/baselines/fr2.cc.o" "gcc" "src/CMakeFiles/fats.dir/baselines/fr2.cc.o.d"
  "/root/repo/src/baselines/frs.cc" "src/CMakeFiles/fats.dir/baselines/frs.cc.o" "gcc" "src/CMakeFiles/fats.dir/baselines/frs.cc.o.d"
  "/root/repo/src/core/client_unlearner.cc" "src/CMakeFiles/fats.dir/core/client_unlearner.cc.o" "gcc" "src/CMakeFiles/fats.dir/core/client_unlearner.cc.o.d"
  "/root/repo/src/core/compact_unlearner.cc" "src/CMakeFiles/fats.dir/core/compact_unlearner.cc.o" "gcc" "src/CMakeFiles/fats.dir/core/compact_unlearner.cc.o.d"
  "/root/repo/src/core/fats_config.cc" "src/CMakeFiles/fats.dir/core/fats_config.cc.o" "gcc" "src/CMakeFiles/fats.dir/core/fats_config.cc.o.d"
  "/root/repo/src/core/fats_trainer.cc" "src/CMakeFiles/fats.dir/core/fats_trainer.cc.o" "gcc" "src/CMakeFiles/fats.dir/core/fats_trainer.cc.o.d"
  "/root/repo/src/core/sample_unlearner.cc" "src/CMakeFiles/fats.dir/core/sample_unlearner.cc.o" "gcc" "src/CMakeFiles/fats.dir/core/sample_unlearner.cc.o.d"
  "/root/repo/src/core/tv_stability.cc" "src/CMakeFiles/fats.dir/core/tv_stability.cc.o" "gcc" "src/CMakeFiles/fats.dir/core/tv_stability.cc.o.d"
  "/root/repo/src/core/unlearning_executor.cc" "src/CMakeFiles/fats.dir/core/unlearning_executor.cc.o" "gcc" "src/CMakeFiles/fats.dir/core/unlearning_executor.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/fats.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/fats.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/federated_dataset.cc" "src/CMakeFiles/fats.dir/data/federated_dataset.cc.o" "gcc" "src/CMakeFiles/fats.dir/data/federated_dataset.cc.o.d"
  "/root/repo/src/data/paper_configs.cc" "src/CMakeFiles/fats.dir/data/paper_configs.cc.o" "gcc" "src/CMakeFiles/fats.dir/data/paper_configs.cc.o.d"
  "/root/repo/src/data/partition.cc" "src/CMakeFiles/fats.dir/data/partition.cc.o" "gcc" "src/CMakeFiles/fats.dir/data/partition.cc.o.d"
  "/root/repo/src/data/synthetic_image.cc" "src/CMakeFiles/fats.dir/data/synthetic_image.cc.o" "gcc" "src/CMakeFiles/fats.dir/data/synthetic_image.cc.o.d"
  "/root/repo/src/data/synthetic_text.cc" "src/CMakeFiles/fats.dir/data/synthetic_text.cc.o" "gcc" "src/CMakeFiles/fats.dir/data/synthetic_text.cc.o.d"
  "/root/repo/src/fl/client.cc" "src/CMakeFiles/fats.dir/fl/client.cc.o" "gcc" "src/CMakeFiles/fats.dir/fl/client.cc.o.d"
  "/root/repo/src/fl/comm_stats.cc" "src/CMakeFiles/fats.dir/fl/comm_stats.cc.o" "gcc" "src/CMakeFiles/fats.dir/fl/comm_stats.cc.o.d"
  "/root/repo/src/fl/fedavg.cc" "src/CMakeFiles/fats.dir/fl/fedavg.cc.o" "gcc" "src/CMakeFiles/fats.dir/fl/fedavg.cc.o.d"
  "/root/repo/src/fl/server.cc" "src/CMakeFiles/fats.dir/fl/server.cc.o" "gcc" "src/CMakeFiles/fats.dir/fl/server.cc.o.d"
  "/root/repo/src/fl/state_store.cc" "src/CMakeFiles/fats.dir/fl/state_store.cc.o" "gcc" "src/CMakeFiles/fats.dir/fl/state_store.cc.o.d"
  "/root/repo/src/fl/train_log.cc" "src/CMakeFiles/fats.dir/fl/train_log.cc.o" "gcc" "src/CMakeFiles/fats.dir/fl/train_log.cc.o.d"
  "/root/repo/src/io/checkpoint.cc" "src/CMakeFiles/fats.dir/io/checkpoint.cc.o" "gcc" "src/CMakeFiles/fats.dir/io/checkpoint.cc.o.d"
  "/root/repo/src/metrics/evaluation.cc" "src/CMakeFiles/fats.dir/metrics/evaluation.cc.o" "gcc" "src/CMakeFiles/fats.dir/metrics/evaluation.cc.o.d"
  "/root/repo/src/metrics/gradient_diversity.cc" "src/CMakeFiles/fats.dir/metrics/gradient_diversity.cc.o" "gcc" "src/CMakeFiles/fats.dir/metrics/gradient_diversity.cc.o.d"
  "/root/repo/src/metrics/unlearning_metrics.cc" "src/CMakeFiles/fats.dir/metrics/unlearning_metrics.cc.o" "gcc" "src/CMakeFiles/fats.dir/metrics/unlearning_metrics.cc.o.d"
  "/root/repo/src/nn/activations.cc" "src/CMakeFiles/fats.dir/nn/activations.cc.o" "gcc" "src/CMakeFiles/fats.dir/nn/activations.cc.o.d"
  "/root/repo/src/nn/conv2d.cc" "src/CMakeFiles/fats.dir/nn/conv2d.cc.o" "gcc" "src/CMakeFiles/fats.dir/nn/conv2d.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/CMakeFiles/fats.dir/nn/embedding.cc.o" "gcc" "src/CMakeFiles/fats.dir/nn/embedding.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/fats.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/fats.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/fats.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/fats.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/fats.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/fats.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/CMakeFiles/fats.dir/nn/lstm.cc.o" "gcc" "src/CMakeFiles/fats.dir/nn/lstm.cc.o.d"
  "/root/repo/src/nn/model_zoo.cc" "src/CMakeFiles/fats.dir/nn/model_zoo.cc.o" "gcc" "src/CMakeFiles/fats.dir/nn/model_zoo.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/fats.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/fats.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/parameter_vector.cc" "src/CMakeFiles/fats.dir/nn/parameter_vector.cc.o" "gcc" "src/CMakeFiles/fats.dir/nn/parameter_vector.cc.o.d"
  "/root/repo/src/nn/pooling.cc" "src/CMakeFiles/fats.dir/nn/pooling.cc.o" "gcc" "src/CMakeFiles/fats.dir/nn/pooling.cc.o.d"
  "/root/repo/src/nn/sequential.cc" "src/CMakeFiles/fats.dir/nn/sequential.cc.o" "gcc" "src/CMakeFiles/fats.dir/nn/sequential.cc.o.d"
  "/root/repo/src/rng/philox.cc" "src/CMakeFiles/fats.dir/rng/philox.cc.o" "gcc" "src/CMakeFiles/fats.dir/rng/philox.cc.o.d"
  "/root/repo/src/rng/rng_stream.cc" "src/CMakeFiles/fats.dir/rng/rng_stream.cc.o" "gcc" "src/CMakeFiles/fats.dir/rng/rng_stream.cc.o.d"
  "/root/repo/src/rng/sampling.cc" "src/CMakeFiles/fats.dir/rng/sampling.cc.o" "gcc" "src/CMakeFiles/fats.dir/rng/sampling.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/fats.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/fats.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/tensor/tensor_ops.cc" "src/CMakeFiles/fats.dir/tensor/tensor_ops.cc.o" "gcc" "src/CMakeFiles/fats.dir/tensor/tensor_ops.cc.o.d"
  "/root/repo/src/util/binary_io.cc" "src/CMakeFiles/fats.dir/util/binary_io.cc.o" "gcc" "src/CMakeFiles/fats.dir/util/binary_io.cc.o.d"
  "/root/repo/src/util/csv_writer.cc" "src/CMakeFiles/fats.dir/util/csv_writer.cc.o" "gcc" "src/CMakeFiles/fats.dir/util/csv_writer.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/CMakeFiles/fats.dir/util/flags.cc.o" "gcc" "src/CMakeFiles/fats.dir/util/flags.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/fats.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/fats.dir/util/logging.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/fats.dir/util/status.cc.o" "gcc" "src/CMakeFiles/fats.dir/util/status.cc.o.d"
  "/root/repo/src/util/stopwatch.cc" "src/CMakeFiles/fats.dir/util/stopwatch.cc.o" "gcc" "src/CMakeFiles/fats.dir/util/stopwatch.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/fats.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/fats.dir/util/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
