file(REMOVE_RECURSE
  "libfats.a"
)
