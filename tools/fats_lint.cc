// fats_lint driver: walks src/, tools/, bench/, and examples/ under a repo
// root and reports determinism-discipline violations (see fats_lint_lib.h
// for the rule set and suppression syntax).
//
// Usage:
//   fats_lint [--root DIR] [--json FILE|-] [--quiet] [--list-rules] [PATH...]
//
// With explicit PATH arguments only those files/directories are scanned
// (used by tools/ci.sh to lint changed files).  Exit status is the number
// of unsuppressed findings, capped at 1, so it plugs directly into ctest.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "fats_lint_lib.h"

namespace fs = std::filesystem;

namespace {

std::string ReadFile(const fs::path& p, bool* ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    *ok = false;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

bool IsSkippedDir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.rfind("build", 0) == 0 || name == ".git" ||
         name == "third_party";
}

void CollectFiles(const fs::path& root, std::vector<fs::path>* out) {
  if (!fs::exists(root)) return;
  if (fs::is_regular_file(root)) {
    if (fats::lint::ShouldLintFile(root.string())) out->push_back(root);
    return;
  }
  fs::recursive_directory_iterator it(
      root, fs::directory_options::skip_permission_denied);
  for (auto end = fs::recursive_directory_iterator(); it != end; ++it) {
    if (it->is_directory()) {
      if (IsSkippedDir(it->path())) it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() &&
        fats::lint::ShouldLintFile(it->path().string())) {
      out->push_back(it->path());
    }
  }
}

// Path relative to `root` when possible (keeps reports stable across
// machines); otherwise the path as-is.
std::string RelativeTo(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty() || rel.string().rfind("..", 0) == 0) {
    return p.generic_string();
  }
  return rel.generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string json_out;
  bool quiet = false;
  std::vector<std::string> explicit_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      for (const std::string& r : fats::lint::AllRules()) {
        std::cout << r << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: fats_lint [--root DIR] [--json FILE|-] [--quiet] "
                   "[--list-rules] [PATH...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      // A typo'd flag must not silently degrade into an empty scan that
      // "passes".
      std::cerr << "fats_lint: unknown option '" << arg
                << "' (see --help)\n";
      return 2;
    } else {
      explicit_paths.push_back(arg);
    }
  }

  std::vector<fs::path> files;
  if (!explicit_paths.empty()) {
    for (const std::string& p : explicit_paths) {
      if (!fs::exists(p)) {
        std::cerr << "fats_lint: no such file or directory: " << p << "\n";
        return 2;
      }
      CollectFiles(p, &files);
    }
  } else {
    for (const char* sub : {"src", "tools", "bench", "examples"}) {
      CollectFiles(root / sub, &files);
    }
  }

  std::vector<fats::lint::Finding> findings;
  int read_errors = 0;
  for (const fs::path& file : files) {
    bool ok = false;
    const std::string content = ReadFile(file, &ok);
    if (!ok) {
      std::cerr << "fats_lint: cannot read " << file << "\n";
      ++read_errors;
      continue;
    }
    const std::string rel = RelativeTo(file, root);
    const fats::lint::FileClass cls = fats::lint::ClassifyPath(rel);

    // Make the sibling header's unordered-container members visible when
    // scanning a .cc (e.g. state_store.cc iterates members declared in
    // state_store.h).
    std::vector<std::string> extra_storage;
    std::vector<std::string_view> extra;
    if (cls.ordered_rules && file.extension() != ".h") {
      fs::path header = file;
      header.replace_extension(".h");
      if (fs::exists(header)) {
        bool hok = false;
        std::string hcontent = ReadFile(header, &hok);
        if (hok) {
          extra_storage.push_back(std::move(hcontent));
          extra.push_back(extra_storage.back());
        }
      }
    }

    std::vector<fats::lint::Finding> file_findings =
        fats::lint::ScanSource(rel, content, cls, extra);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }

  if (!quiet) {
    for (const fats::lint::Finding& f : findings) {
      std::cerr << f.file << ":" << f.line << ": [" << f.rule << "]"
                << (f.suppressed ? " (suppressed)" : "") << " " << f.message
                << "\n";
    }
  }

  if (!json_out.empty()) {
    const std::string json = fats::lint::ToJson(findings);
    if (json_out == "-") {
      std::cout << json;
    } else {
      std::ofstream out(json_out, std::ios::binary);
      out << json;
      if (!out) {
        std::cerr << "fats_lint: cannot write " << json_out << "\n";
        return 2;
      }
    }
  }

  const int active = fats::lint::ActiveCount(findings);
  if (!quiet) {
    std::cerr << "fats_lint: scanned " << files.size() << " files, " << active
              << " violation(s), "
              << static_cast<int>(findings.size()) - active
              << " suppressed\n";
  }
  if (read_errors > 0) return 2;
  return active > 0 ? 1 : 0;
}
