// fats_lint: determinism lint for the FATS codebase.
//
// FATS's exactness guarantee (Theorems 4.3/4.5) requires that unlearning
// retraining replays the original run bit-identically.  That only holds if
// every source of randomness flows through the Philox streams in src/rng/
// and no hot path depends on unordered-container iteration order.  This
// library implements the scanner behind tools/fats_lint.cc; it is a
// library so tests/fats_lint_test.cc can drive it on known snippets.
//
// Rules (rule IDs are stable; they appear in reports and in suppression
// comments):
//
//   banned-rand           std::rand / rand() / srand outside src/rng/.
//   banned-random-device  std::random_device outside src/rng/ (non-
//                         reproducible entropy source).
//   default-engine        default-constructed std::mt19937 /
//                         std::default_random_engine etc. outside src/rng/.
//   time-seed             wall-clock time used as a seed (time(...)/
//                         clock ::now() on a seeding line).
//   random-include        #include <random> outside src/rng/.
//   unordered-iteration   iteration over std::unordered_map/set in
//                         src/core/, src/fl/, or src/baselines/, where
//                         order-dependent float accumulation would break
//                         replay.
//   raw-thread            std::thread / std::jthread / std::async outside
//                         src/util/thread_pool.*: ad-hoc threads bypass the
//                         deterministic-parallelism contract (pre-drawn
//                         substreams + ordered reduction); use
//                         fats::ThreadPool.
//   raw-io                std::ofstream / fopen / fwrite in src/core/,
//                         src/fl/, or src/io/ outside the journal module
//                         (io/journal.*): durable state written behind the
//                         journal's back has no CRC framing, no fsync
//                         discipline, and no crash-recovery story.  Route
//                         writes through fats::JournalWriter or the
//                         checkpoint BinaryWriter; read-only probes take a
//                         `// fats-lint: allow(raw-io)` suppression.
//   hot-alloc             in src/nn/, inside the body of a Forward(...) or
//                         Backward(...) definition (the per-step hot path):
//                         (a) a Tensor local temporary -- per-step heap
//                         allocation; use a Workspace slot or an Into-style
//                         destination-passing op instead -- or (b) a
//                         triple-nested multiply-accumulate for-loop, i.e. a
//                         raw matmul that bypasses the deterministic blocked
//                         kernels in tensor/gemm.h.  Methods whose name
//                         merely contains Forward/Backward (ForwardDirect,
//                         BackwardDirect -- the retained reference paths)
//                         are exempt.
//
// Suppression: append `// fats-lint: allow(<rule>)` (comma-separated list,
// or `all`) on the offending line or the line directly above it.  Suppressed
// findings are still reported (with suppressed=true) but do not fail the
// lint.  Multiple directives on one line merge; the directive is recognised
// inside block comments (`/* fats-lint: allow(x) */`) and tolerates
// whitespace between `allow` and `(`.
//
// The scanner strips comments and string/char literals before matching, so
// banned tokens inside literals or prose never fire -- including the regex
// pattern strings in this library's own implementation.

#ifndef FATS_TOOLS_FATS_LINT_LIB_H_
#define FATS_TOOLS_FATS_LINT_LIB_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace fats::lint {

// Stable rule identifiers.
inline constexpr const char kRuleBannedRand[] = "banned-rand";
inline constexpr const char kRuleBannedRandomDevice[] = "banned-random-device";
inline constexpr const char kRuleDefaultEngine[] = "default-engine";
inline constexpr const char kRuleTimeSeed[] = "time-seed";
inline constexpr const char kRuleRandomInclude[] = "random-include";
inline constexpr const char kRuleUnorderedIteration[] = "unordered-iteration";
inline constexpr const char kRuleRawThread[] = "raw-thread";
inline constexpr const char kRuleRawIo[] = "raw-io";
inline constexpr const char kRuleHotAlloc[] = "hot-alloc";

// All rule IDs, for --list-rules and for validating allow(...) directives.
std::vector<std::string> AllRules();

struct Finding {
  std::string rule;     // one of the kRule* IDs
  std::string file;     // path exactly as passed to ScanSource
  int line = 0;         // 1-based line number
  std::string message;  // human-readable explanation
  bool suppressed = false;
};

// Parsed `// fats-lint: allow(...)` directives for one file.  The rules
// allowed on a line suppress findings on that line and the line directly
// below it (i.e. a directive suppresses same-line and next-line findings).
// Shared with the fats_analyze passes so every rule family uses one
// suppression syntax.
class SuppressionMap {
 public:
  static SuppressionMap Parse(std::string_view content);

  // True when `rule` is allowed on `line` or the line directly above it.
  bool Allows(int line, const std::string& rule) const;

  bool empty() const { return by_line_.empty(); }

 private:
  std::map<int, std::set<std::string>> by_line_;
};

// Which rule families apply to a file, derived from its path.
struct FileClass {
  // RNG discipline rules (banned-rand, banned-random-device, default-engine,
  // time-seed, random-include).  Off for files under src/rng/, which is the
  // one place allowed to touch <random> and raw engines.
  bool rng_rules = true;
  // unordered-iteration.  On only for src/core/, src/fl/, src/baselines/.
  bool ordered_rules = false;
  // raw-thread.  Off only for the src/util/thread_pool.{h,cc} module, the
  // one place allowed to create threads.
  bool thread_rules = true;
  // raw-io.  On for src/core/, src/fl/, src/io/ except the journal module
  // (io/journal.{h,cc}), the one sanctioned raw-file writer.
  bool io_rules = false;
  // hot-alloc.  On only for src/nn/, where Forward/Backward bodies are the
  // per-training-step hot path covered by the allocation-free contract
  // (DESIGN.md section 7.2).
  bool hot_rules = false;
};

// Classifies a repo-relative path ("src/core/fats_trainer.cc").  Absolute
// paths work too as long as they contain the repo-relative components.
FileClass ClassifyPath(std::string_view path);

// True for C++ translation units and headers the lint should look at.
bool ShouldLintFile(std::string_view path);

// Returns a copy of `content` with comments and string/char literals
// blanked (replaced by spaces, newlines preserved) so offsets and line
// numbers still line up.  Exposed for tests.
std::string StripCommentsAndStrings(std::string_view content);

// Collects names of variables/members declared with an unordered container
// type in `content`.  Used to recognise iteration in a .cc over members
// declared in the matching .h.  Exposed for tests.
std::vector<std::string> CollectUnorderedNames(std::string_view content);

// Scans one file.  `extra_decl_sources` are additional sources (typically
// the sibling header of a .cc) whose unordered-container declarations are
// in scope for the unordered-iteration rule.
std::vector<Finding> ScanSource(
    std::string_view path, std::string_view content, const FileClass& cls,
    const std::vector<std::string_view>& extra_decl_sources = {});

// Convenience overload: classifies `path` itself.
std::vector<Finding> ScanSource(std::string_view path,
                                std::string_view content);

// Machine-readable report: a JSON array of finding objects with keys
// rule/file/line/message/suppressed.
std::string ToJson(const std::vector<Finding>& findings);

// Number of findings that are not suppressed (the lint's failure count).
int ActiveCount(const std::vector<Finding>& findings);

}  // namespace fats::lint

#endif  // FATS_TOOLS_FATS_LINT_LIB_H_
