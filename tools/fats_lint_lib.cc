#include "fats_lint_lib.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <functional>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <utility>

namespace fats::lint {
namespace {

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// True if `path` contains the directory component `dir` (e.g. "src/rng").
// Both '/' and '\\' are accepted as separators.
bool HasComponent(std::string_view path, std::string_view dir) {
  std::string norm(path);
  std::replace(norm.begin(), norm.end(), '\\', '/');
  std::string needle = "/" + std::string(dir) + "/";
  if (norm.find(needle) != std::string::npos) return true;
  // Repo-relative paths like "src/rng/philox.cc" have no leading slash.
  return norm.rfind(std::string(dir) + "/", 0) == 0;
}

int LineOfOffset(std::string_view text, size_t offset) {
  return 1 + static_cast<int>(
                 std::count(text.begin(), text.begin() + offset, '\n'));
}

// Splits original content into lines (no trailing '\n').
std::vector<std::string_view> SplitLines(std::string_view content) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= content.size()) {
    size_t nl = content.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(content.substr(start));
      break;
    }
    lines.push_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

bool IsSuppressed(const SuppressionMap& sup, int line,
                  const std::string& rule) {
  return sup.Allows(line, rule);
}

struct Pattern {
  const char* rule;
  std::regex re;
  const char* message;
};

// RNG-discipline patterns, applied to comment/string-stripped text of files
// outside src/rng/.
const std::vector<Pattern>& RngPatterns() {
  static const std::vector<Pattern>* kPatterns = new std::vector<Pattern>{
      {kRuleBannedRand,
       std::regex(R"(\bstd\s*::\s*rand\b|\brand\s*\(|\bsrand\s*\()"),
       "libc rand()/srand() is banned: route randomness through "
       "fats::RngStream (src/rng/) so unlearning replay is bit-exact"},
      {kRuleBannedRandomDevice, std::regex(R"(\brandom_device\b)"),
       "std::random_device is a non-reproducible entropy source; derive "
       "seeds from the experiment config instead"},
      {kRuleDefaultEngine,
       std::regex(
           R"(\b(?:std\s*::\s*)?(?:mt19937(?:_64)?|default_random_engine|minstd_rand0?|ranlux(?:24|48)(?:_base)?|knuth_b)\s+[A-Za-z_]\w*\s*(?:;|\{\s*\}|\(\s*\)))"),
       "default-constructed standard engine: all streams must be "
       "Philox streams keyed by (seed, stream id) from src/rng/"},
      {kRuleRandomInclude, std::regex(R"(#\s*include\s*<random>)"),
       "direct <random> include outside src/rng/: use rng/rng_stream.h "
       "and rng/sampling.h instead"},
  };
  return *kPatterns;
}

// time-seed is line-oriented: a wall-clock call and a seeding context on the
// same line.
bool LineHasTimeSeed(std::string_view line) {
  static const std::regex kClock(
      R"(\b(?:std\s*::\s*)?time\s*\(|\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\()");
  static const std::regex kSeedContext(
      R"(\bseed\w*\s*\(|\bseed\b|\bsrand\b|\bmt19937\b|\bdefault_random_engine\b)");
  std::string s(line);
  return std::regex_search(s, kClock) && std::regex_search(s, kSeedContext);
}

// Finds the offset just past the ')' matching the '(' at `open`, or npos.
size_t MatchParen(std::string_view text, size_t open) {
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') {
      ++depth;
    } else if (text[i] == ')') {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string_view::npos;
}

// Finds the offset just past the '}' matching the '{' at `open`, or npos.
size_t MatchBrace(std::string_view text, size_t open) {
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') {
      ++depth;
    } else if (text[i] == '}') {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string_view::npos;
}

// Finds the offset just past the ';' ending the statement starting at `pos`,
// skipping over nested (...) and {...} groups (so the ';'s inside a nested
// for-header or compound statement don't terminate early).  Returns npos if
// the text ends first.
size_t StatementEnd(std::string_view text, size_t pos) {
  size_t i = pos;
  while (i < text.size()) {
    char c = text[i];
    if (c == '(') {
      i = MatchParen(text, i);
      if (i == std::string_view::npos) return i;
    } else if (c == '{') {
      i = MatchBrace(text, i);
      if (i == std::string_view::npos) return i;
    } else if (c == ';') {
      return i + 1;
    } else {
      ++i;
    }
  }
  return std::string_view::npos;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// The extent of the body of a `for` whose keyword starts at `kw` (offset of
// the 'f').  Returns {begin, end} of the body text (inside the braces for a
// braced body, the single statement otherwise), or {npos, npos} on parse
// trouble.
std::pair<size_t, size_t> ForBodyExtent(std::string_view text, size_t kw) {
  size_t open = text.find('(', kw);
  if (open == std::string_view::npos) return {std::string_view::npos, 0};
  size_t after = MatchParen(text, open);
  if (after == std::string_view::npos) return {std::string_view::npos, 0};
  while (after < text.size() &&
         std::isspace(static_cast<unsigned char>(text[after]))) {
    ++after;
  }
  if (after >= text.size()) return {std::string_view::npos, 0};
  if (text[after] == '{') {
    size_t close = MatchBrace(text, after);
    if (close == std::string_view::npos) return {std::string_view::npos, 0};
    return {after + 1, close - 1};
  }
  size_t end = StatementEnd(text, after);
  if (end == std::string_view::npos) return {std::string_view::npos, 0};
  return {after, end};
}

// Scans a Forward/Backward method body for the hot-alloc violations: Tensor
// temporaries and raw triple-nested multiply-accumulate loops.  Offsets are
// absolute into `stripped`; `add` receives (rule-specific message, offset).
void ScanHotBody(
    std::string_view stripped, size_t body_begin, size_t body_end,
    const std::function<void(const std::string&, size_t)>& add) {
  const std::string_view body = stripped.substr(body_begin, body_end - body_begin);

  // (a) Tensor local temporaries.  `Tensor&` / `const Tensor&` bindings and
  // `Tensor*` pointers don't match: the regex requires whitespace then an
  // identifier directly after the type name.
  static const std::regex kTensorTemp(R"(\bTensor\s+([A-Za-z_]\w*))");
  const std::string body_str(body);
  for (auto it = std::sregex_iterator(body_str.begin(), body_str.end(),
                                      kTensorTemp);
       it != std::sregex_iterator(); ++it) {
    add("Tensor temporary '" + it->str(1) +
            "' constructed in a hot Forward/Backward body: per-step heap "
            "allocation breaks the allocation-free training-step contract; "
            "bind a Workspace slot (ws->Get/Peek) or use a "
            "destination-passing Into op",
        body_begin + static_cast<size_t>(it->position()));
  }

  // (b) Triple-nested multiply-accumulate loops.  Walk the body tracking a
  // stack of enclosing for-loops; a for at nesting depth >= 3 whose body
  // contains `+= ... * ...` on one statement is a raw matmul.
  static const std::regex kMac(R"(\+=[^;]*\*)");
  std::vector<size_t> loop_ends;  // body-relative end offsets of open loops
  size_t i = 0;
  while (i < body.size()) {
    while (!loop_ends.empty() && i >= loop_ends.back()) loop_ends.pop_back();
    if (body[i] == 'f' && body.compare(i, 3, "for") == 0 &&
        (i == 0 || !IsIdentChar(body[i - 1])) &&
        (i + 3 >= body.size() || !IsIdentChar(body[i + 3]))) {
      auto [lb, le] = ForBodyExtent(body, i);
      if (lb == std::string_view::npos) {
        ++i;
        continue;
      }
      loop_ends.push_back(le);
      if (loop_ends.size() >= 3) {
        const std::string inner(body.substr(lb, le - lb));
        if (std::regex_search(inner, kMac)) {
          add("triple-nested multiply-accumulate loop in a hot "
              "Forward/Backward body: raw matmuls bypass the deterministic "
              "blocked kernels; call fats::gemm / the tensor_ops Into "
              "variants instead",
              body_begin + i);
        }
      }
      i = lb;  // descend into the loop body to find deeper nestings
    } else {
      ++i;
    }
  }
}

// Finds the offset just past the '>' matching the '<' at `open`.
size_t MatchAngle(std::string_view text, size_t open) {
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == '<') {
      ++depth;
    } else if (text[i] == '>') {
      if (--depth == 0) return i + 1;
    } else if (text[i] == ';') {
      // A ';' inside template args means we mis-parsed; bail out.
      return std::string_view::npos;
    }
  }
  return std::string_view::npos;
}

}  // namespace

SuppressionMap SuppressionMap::Parse(std::string_view content) {
  SuppressionMap map;
  const std::vector<std::string_view> lines = SplitLines(content);
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    // A line may carry several directives (e.g. one inherited from a macro
    // plus a trailing `// fats-lint: allow(...)`); all of them merge into
    // the line's allow set.
    size_t pos = 0;
    while ((pos = line.find("fats-lint:", pos)) != std::string_view::npos) {
      pos += std::string_view("fats-lint:").size();
      // Tolerate whitespace around `allow` and before `(`.
      size_t cursor = pos;
      while (cursor < line.size() &&
             std::isspace(static_cast<unsigned char>(line[cursor]))) {
        ++cursor;
      }
      if (line.compare(cursor, 5, "allow") != 0) continue;
      cursor += 5;
      while (cursor < line.size() &&
             std::isspace(static_cast<unsigned char>(line[cursor]))) {
        ++cursor;
      }
      if (cursor >= line.size() || line[cursor] != '(') continue;
      const size_t open = cursor;
      const size_t close = line.find(')', open);
      if (close == std::string_view::npos) continue;
      std::string list(line.substr(open + 1, close - open - 1));
      std::set<std::string> rules;
      std::stringstream ss(list);
      std::string item;
      while (std::getline(ss, item, ',')) {
        item.erase(
            std::remove_if(item.begin(), item.end(),
                           [](unsigned char c) { return std::isspace(c); }),
            item.end());
        if (!item.empty()) rules.insert(item);
      }
      // An empty list (`allow()`) allows nothing; recording it would make
      // empty() lie.
      if (!rules.empty()) {
        map.by_line_[static_cast<int>(i) + 1].merge(rules);
      }
      pos = close;
    }
  }
  return map;
}

bool SuppressionMap::Allows(int line, const std::string& rule) const {
  for (int l : {line, line - 1}) {
    auto it = by_line_.find(l);
    if (it == by_line_.end()) continue;
    if (it->second.count(rule) || it->second.count("all")) return true;
  }
  return false;
}

std::vector<std::string> AllRules() {
  return {kRuleBannedRand,   kRuleBannedRandomDevice, kRuleDefaultEngine,
          kRuleTimeSeed,     kRuleRandomInclude,      kRuleUnorderedIteration,
          kRuleRawThread,    kRuleRawIo,              kRuleHotAlloc};
}

FileClass ClassifyPath(std::string_view path) {
  FileClass cls;
  cls.rng_rules = !HasComponent(path, "src/rng");
  cls.ordered_rules = HasComponent(path, "src/core") ||
                      HasComponent(path, "src/fl") ||
                      HasComponent(path, "src/baselines");
  // The pool module itself is the single sanctioned thread creator.
  std::string norm(path);
  std::replace(norm.begin(), norm.end(), '\\', '/');
  cls.thread_rules = norm.find("util/thread_pool.") == std::string::npos;
  // The journal module is the single sanctioned raw-file writer.
  cls.io_rules = (HasComponent(path, "src/core") ||
                  HasComponent(path, "src/fl") ||
                  HasComponent(path, "src/io")) &&
                 norm.find("io/journal.") == std::string::npos;
  cls.hot_rules = HasComponent(path, "src/nn");
  return cls;
}

bool ShouldLintFile(std::string_view path) {
  return EndsWith(path, ".cc") || EndsWith(path, ".cpp") ||
         EndsWith(path, ".cxx") || EndsWith(path, ".h") ||
         EndsWith(path, ".hpp");
}

std::string StripCommentsAndStrings(std::string_view content) {
  std::string out(content);
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_delim;  // the )delim" terminator of a raw string
  size_t i = 0;
  auto blank = [&out](size_t pos) {
    if (out[pos] != '\n') out[pos] = ' ';
  };
  while (i < out.size()) {
    char c = out[i];
    char next = (i + 1 < out.size()) ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   out[i - 1])) &&
                               out[i - 1] != '_'))) {
          // R"delim( ... )delim"
          size_t open = out.find('(', i + 2);
          if (open == std::string::npos) {
            ++i;
            break;
          }
          raw_delim = ")" + out.substr(i + 2, open - (i + 2)) + "\"";
          for (size_t j = i; j <= open; ++j) blank(j);
          i = open + 1;
          state = State::kRawString;
        } else if (c == '"') {
          state = State::kString;
          ++i;
        } else if (c == '\'') {
          state = State::kChar;
          ++i;
        } else {
          ++i;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          blank(i);
        }
        ++i;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          blank(i);
          blank(i + 1);
          state = State::kCode;
          i += 2;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          blank(i);
          if (i + 1 < out.size()) blank(i + 1);
          i += 2;
        } else if (c == '"') {
          state = State::kCode;
          ++i;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          blank(i);
          if (i + 1 < out.size()) blank(i + 1);
          i += 2;
        } else if (c == '\'') {
          state = State::kCode;
          ++i;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::kRawString:
        if (out.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t j = i; j < i + raw_delim.size(); ++j) blank(j);
          i += raw_delim.size();
          state = State::kCode;
        } else {
          blank(i);
          ++i;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> CollectUnorderedNames(std::string_view content) {
  const std::string stripped = StripCommentsAndStrings(content);
  std::vector<std::string> names;
  static const std::regex kDecl(R"(\bunordered_(?:map|set|multimap|multiset)\s*(<))");
  auto begin = std::sregex_iterator(stripped.begin(), stripped.end(), kDecl);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    size_t open = static_cast<size_t>(it->position(1));
    size_t after = MatchAngle(stripped, open);
    if (after == std::string_view::npos) continue;
    // Skip whitespace, then expect an identifier (the variable name).
    while (after < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[after]))) {
      ++after;
    }
    size_t name_end = after;
    while (name_end < stripped.size() &&
           (std::isalnum(static_cast<unsigned char>(stripped[name_end])) ||
            stripped[name_end] == '_')) {
      ++name_end;
    }
    if (name_end == after) continue;  // e.g. `using X = unordered_map<...>;`
    size_t tail = name_end;
    while (tail < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[tail]))) {
      ++tail;
    }
    // `(` after the identifier means a function returning the container, not
    // a variable declaration.
    if (tail < stripped.size() && stripped[tail] == '(') continue;
    names.push_back(stripped.substr(after, name_end - after));
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::vector<Finding> ScanSource(
    std::string_view path, std::string_view content, const FileClass& cls,
    const std::vector<std::string_view>& extra_decl_sources) {
  std::vector<Finding> findings;
  const std::string stripped = StripCommentsAndStrings(content);
  const SuppressionMap suppressions = SuppressionMap::Parse(content);

  auto add = [&](const char* rule, int line, const std::string& message) {
    Finding f;
    f.rule = rule;
    f.file = std::string(path);
    f.line = line;
    f.message = message;
    f.suppressed = IsSuppressed(suppressions, line, f.rule);
    findings.push_back(std::move(f));
  };

  if (cls.rng_rules) {
    for (const Pattern& p : RngPatterns()) {
      auto begin = std::sregex_iterator(stripped.begin(), stripped.end(), p.re);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        add(p.rule, LineOfOffset(stripped, static_cast<size_t>(it->position())),
            p.message);
      }
    }
    const std::vector<std::string_view> lines = SplitLines(stripped);
    for (size_t i = 0; i < lines.size(); ++i) {
      if (LineHasTimeSeed(lines[i])) {
        add(kRuleTimeSeed, static_cast<int>(i) + 1,
            "wall-clock time used as a seed: seeds must come from the "
            "experiment config so retraining replays bit-identically");
      }
    }
  }

  if (cls.thread_rules) {
    static const std::regex kRawThread(
        R"(\bstd\s*::\s*(?:thread|jthread|async)\b)");
    auto begin =
        std::sregex_iterator(stripped.begin(), stripped.end(), kRawThread);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      add(kRuleRawThread,
          LineOfOffset(stripped, static_cast<size_t>(it->position())),
          "raw std::thread/std::jthread/std::async outside "
          "src/util/thread_pool: ad-hoc threads bypass the deterministic-"
          "parallelism contract (pre-drawn substreams, ordered reduction); "
          "run parallel work through fats::ThreadPool");
    }
  }

  if (cls.ordered_rules) {
    std::vector<std::string> names = CollectUnorderedNames(content);
    for (std::string_view extra : extra_decl_sources) {
      std::vector<std::string> more = CollectUnorderedNames(extra);
      names.insert(names.end(), more.begin(), more.end());
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    for (const std::string& name : names) {
      const std::string msg =
          "iteration over unordered container '" + name +
          "': hash-order traversal makes float accumulation order "
          "nondeterministic across runs, breaking TV-stable replay; iterate "
          "over sorted keys or use an ordered container";
      const std::regex range_for("for\\s*\\([^;)]*:\\s*" + name + "\\s*\\)");
      auto begin =
          std::sregex_iterator(stripped.begin(), stripped.end(), range_for);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        add(kRuleUnorderedIteration,
            LineOfOffset(stripped, static_cast<size_t>(it->position())), msg);
      }
      // begin() only: the .end() sentinel also appears in order-independent
      // find()-lookup compares, and iteration always touches begin().
      const std::regex explicit_iter("\\b" + name +
                                     "\\s*\\.\\s*c?r?begin\\s*\\(");
      begin = std::sregex_iterator(stripped.begin(), stripped.end(),
                                   explicit_iter);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        add(kRuleUnorderedIteration,
            LineOfOffset(stripped, static_cast<size_t>(it->position())), msg);
      }
    }
  }

  if (cls.io_rules) {
    static const std::regex kRawIo(
        R"(\bstd\s*::\s*ofstream\b|\bofstream\s+[A-Za-z_]|\b(?:std\s*::\s*)?fopen\s*\(|\b(?:std\s*::\s*)?fwrite\s*\()");
    auto begin = std::sregex_iterator(stripped.begin(), stripped.end(), kRawIo);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      add(kRuleRawIo,
          LineOfOffset(stripped, static_cast<size_t>(it->position())),
          "raw file I/O (std::ofstream/fopen/fwrite) outside the journal "
          "module: durable training state written behind the journal's back "
          "has no CRC framing or fsync discipline, so a crash there is not "
          "recoverable bit-exactly; route writes through fats::JournalWriter "
          "or the checkpoint BinaryWriter");
    }
  }

  if (cls.hot_rules) {
    // Forward/Backward *definitions* only: the name must be followed by a
    // parameter list and then (after qualifiers like const/override) a `{`.
    // Plain calls end in `;`/operators and are skipped; ForwardDirect /
    // BackwardDirect never match because `\(` must follow the name directly.
    static const std::regex kHotDef(R"(\b(?:Forward|Backward)\s*(\())");
    auto begin = std::sregex_iterator(stripped.begin(), stripped.end(), kHotDef);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const size_t open = static_cast<size_t>(it->position(1));
      size_t j = MatchParen(stripped, open);
      if (j == std::string_view::npos) continue;
      while (j < stripped.size() &&
             (std::isspace(static_cast<unsigned char>(stripped[j])) ||
              IsIdentChar(stripped[j]))) {
        ++j;  // whitespace and trailing qualifiers (const, override, ...)
      }
      if (j >= stripped.size() || stripped[j] != '{') continue;
      const size_t body_end = MatchBrace(stripped, j);
      if (body_end == std::string_view::npos) continue;
      ScanHotBody(stripped, j + 1, body_end - 1,
                  [&](const std::string& msg, size_t offset) {
                    add(kRuleHotAlloc, LineOfOffset(stripped, offset), msg);
                  });
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return findings;
}

std::vector<Finding> ScanSource(std::string_view path,
                                std::string_view content) {
  return ScanSource(path, content, ClassifyPath(path), {});
}

namespace {
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string ToJson(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i) os << ",";
    os << "\n  {\"rule\": \"" << JsonEscape(f.rule) << "\", \"file\": \""
       << JsonEscape(f.file) << "\", \"line\": " << f.line
       << ", \"suppressed\": " << (f.suppressed ? "true" : "false")
       << ", \"message\": \"" << JsonEscape(f.message) << "\"}";
  }
  os << (findings.empty() ? "]" : "\n]");
  os << "\n";
  return os.str();
}

int ActiveCount(const std::vector<Finding>& findings) {
  int n = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++n;
  }
  return n;
}

}  // namespace fats::lint
