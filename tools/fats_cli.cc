// fats_cli — drive FATS training and exact unlearning from the shell.
//
//   fats_cli train          --profile=mnist --checkpoint=/tmp/m.ckpt
//                           [--rho_s=0.25 --rho_c=0.5 --rounds=N --seed=S]
//                           [--until_iter=t]           (pause mid-training)
//                           [--threads=N]   (parallel, bit-identical results)
//                           [--journal=/tmp/m.jrn]   (crash-exact durability)
//                           [--log_csv=/tmp/m.csv] [--fault_spec=site:n:act]
//                           [--transport_faults=drop=0.2,seed=4]  (lossy wire)
//   fats_cli resume         --profile=mnist --checkpoint=/tmp/m.ckpt
//                           [--until_iter=t]           (continue training)
//   fats_cli unlearn-sample --profile=mnist --checkpoint=/tmp/m.ckpt
//                           --client=3 --index=7
//   fats_cli unlearn-client --profile=mnist --checkpoint=/tmp/m.ckpt
//                           --client=5
//   fats_cli info           --profile=mnist --checkpoint=/tmp/m.ckpt
//
// The dataset is re-materialized from (profile, seed) on every invocation;
// deletions performed by earlier `unlearn-*` invocations are replayed from
// the checkpoint-adjacent deletion journal (<checkpoint>.deletions), so the
// client-side data view stays consistent across process lifetimes.

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "core/client_unlearner.h"
#include "core/sample_unlearner.h"
#include "data/paper_configs.h"
#include "io/checkpoint.h"
#include "io/train_journal.h"
#include "metrics/gradient_diversity.h"
#include "util/flags.h"

namespace fats {
namespace {

struct CliOptions {
  std::string command;
  std::string profile_name;
  std::string checkpoint;
  double rho_s = 0.25;
  double rho_c = 0.5;
  int64_t rounds = 0;   // 0 = profile default
  int64_t seed = 1;
  int64_t until_iter = 0;  // 0 = train to T
  int64_t client = -1;
  int64_t index = -1;
  int64_t threads = 1;  // worker threads; results are thread-count-invariant
  std::string journal;     // journaled crash-exact session when non-empty
  std::string log_csv;     // write the per-round TrainLog here when non-empty
  std::string fault_spec;  // failpoint arming spec (site:hit:action,...)
  std::string transport_faults;  // lossy-wire spec (drop=..,corrupt=..,...)
};

std::string DeletionJournalPath(const std::string& checkpoint) {
  return checkpoint + ".deletions";
}

/// Applies the deletion journal (one "sample <k> <i>" or "client <k>" per
/// line) so the local data view matches what earlier invocations deleted.
Status ReplayDeletions(const std::string& path, FederatedDataset* data) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::OK();  // no journal yet
  std::string kind;
  while (in >> kind) {
    if (kind == "sample") {
      int64_t client = 0;
      int64_t index = 0;
      if (!(in >> client >> index)) {
        return Status::IoError("corrupt deletion journal: " + path);
      }
      FATS_RETURN_NOT_OK(data->RemoveSample({client, index}));
    } else if (kind == "client") {
      int64_t client = 0;
      if (!(in >> client)) {
        return Status::IoError("corrupt deletion journal: " + path);
      }
      FATS_RETURN_NOT_OK(data->RemoveClient(client));
    } else {
      return Status::IoError("unknown journal entry: " + kind);
    }
  }
  return Status::OK();
}

Status AppendDeletion(const std::string& path, const std::string& line) {
  std::ofstream out(path, std::ios::app);
  if (!out.is_open()) return Status::IoError("cannot open journal: " + path);
  out << line << "\n";
  return out.good() ? Status::OK()
                    : Status::IoError("journal write failed");
}

Result<DatasetProfile> ResolveProfile(const CliOptions& options) {
  FATS_ASSIGN_OR_RETURN(DatasetProfile profile,
                        ScaledProfile(options.profile_name));
  if (options.rounds > 0) profile.rounds_r = options.rounds;
  return profile;
}

void PrintStatusLine(FatsTrainer* trainer) {
  std::printf("  progress : iteration %lld / %lld (generation %llu)\n",
              static_cast<long long>(trainer->trained_through()),
              static_cast<long long>(trainer->config().total_iters_t()),
              static_cast<unsigned long long>(trainer->generation()));
  // Bit-exact fingerprint of the global model; two runs that should be
  // exactly equal (e.g. crashed-and-recovered vs uninterrupted) print the
  // same hash.
  const Tensor& params = trainer->global_params();
  std::printf("  model    : crc32=%08x (%lld params)\n",
              Crc32(params.data(),
                    static_cast<size_t>(params.size()) * sizeof(float)),
              static_cast<long long>(params.size()));
  std::printf("  accuracy : %.4f\n", trainer->EvaluateTestAccuracy());
  std::printf("  comm     : %s\n",
              trainer->comm_stats().ToString().c_str());
  std::printf("  store    : %lld minibatch records, %lld local models, "
              "%lld bytes\n",
              static_cast<long long>(trainer->store().num_minibatch_records()),
              static_cast<long long>(
                  trainer->store().num_local_model_records()),
              static_cast<long long>(trainer->store().ApproxBytes()));
}

Status RunTrain(const CliOptions& options, bool resume) {
  FATS_ASSIGN_OR_RETURN(DatasetProfile profile, ResolveProfile(options));
  FederatedDataset data =
      BuildFederatedData(profile, static_cast<uint64_t>(options.seed));
  FATS_RETURN_NOT_OK(
      ReplayDeletions(DeletionJournalPath(options.checkpoint), &data));
  FatsConfig config = FatsConfig::FromProfile(profile);
  config.rho_s = options.rho_s;
  config.rho_c = options.rho_c;
  config.seed = static_cast<uint64_t>(options.seed);
  config.num_threads = options.threads;
  config.fault_spec = options.fault_spec;
  config.transport_fault_spec = options.transport_faults;
  FATS_RETURN_NOT_OK(config.Validate());
  FatsTrainer trainer(profile.model, config, &data);

  std::unique_ptr<DurableTrainingSession> session;
  if (!options.journal.empty()) {
    // Journaled mode: Open loads the checkpoint if present, replays the
    // journal's committed prefix, and finishes any interrupted pass — the
    // train/resume distinction collapses into one recovery path.
    FATS_ASSIGN_OR_RETURN(
        session, DurableTrainingSession::Open(options.checkpoint,
                                              options.journal, &trainer));
    if (session->recovered() || trainer.trained_through() > 0) {
      std::printf("recovered from %s + %s at iteration %lld\n",
                  options.checkpoint.c_str(), options.journal.c_str(),
                  static_cast<long long>(trainer.trained_through()));
    } else {
      std::printf("training %s (journaled): %s\n", profile.name.c_str(),
                  config.ToString().c_str());
    }
  } else if (resume) {
    FATS_RETURN_NOT_OK(LoadTrainerCheckpoint(options.checkpoint, &trainer));
    std::printf("resumed from %s at iteration %lld\n",
                options.checkpoint.c_str(),
                static_cast<long long>(trainer.trained_through()));
  } else {
    std::printf("training %s: %s\n", profile.name.c_str(),
                config.ToString().c_str());
  }
  const int64_t requested = options.until_iter > 0 ? options.until_iter
                                                   : config.total_iters_t();
  // Recovery may already have carried training past the requested target.
  const int64_t target = std::max(requested, trainer.trained_through());
  trainer.TrainUntil(target);
  PrintStatusLine(&trainer);
  if (session != nullptr) {
    FATS_RETURN_NOT_OK(session->status());
    FATS_RETURN_NOT_OK(session->Checkpoint());
  } else {
    FATS_RETURN_NOT_OK(SaveTrainerCheckpoint(&trainer, options.checkpoint));
  }
  std::printf("checkpoint written to %s\n", options.checkpoint.c_str());
  if (!options.log_csv.empty()) {
    FATS_RETURN_NOT_OK(trainer.log().WriteCsvFile(options.log_csv));
    std::printf("round log written to %s\n", options.log_csv.c_str());
  }
  return Status::OK();
}

Status RunUnlearn(const CliOptions& options, bool client_level) {
  FATS_ASSIGN_OR_RETURN(DatasetProfile profile, ResolveProfile(options));
  if (options.client < 0) {
    return Status::InvalidArgument("--client is required");
  }
  if (!client_level && options.index < 0) {
    return Status::InvalidArgument("--index is required for samples");
  }
  FederatedDataset data =
      BuildFederatedData(profile, static_cast<uint64_t>(options.seed));
  FATS_RETURN_NOT_OK(
      ReplayDeletions(DeletionJournalPath(options.checkpoint), &data));
  FatsConfig config = FatsConfig::FromProfile(profile);
  config.rho_s = options.rho_s;
  config.rho_c = options.rho_c;
  config.seed = static_cast<uint64_t>(options.seed);
  config.num_threads = options.threads;
  config.fault_spec = options.fault_spec;
  config.transport_fault_spec = options.transport_faults;
  FATS_RETURN_NOT_OK(config.Validate());
  FatsTrainer trainer(profile.model, config, &data);
  std::unique_ptr<DurableTrainingSession> session;
  if (!options.journal.empty()) {
    // Journaled unlearning: the operation bracket makes a crashed unlearn
    // roll back atomically instead of corrupting the checkpoint.
    FATS_ASSIGN_OR_RETURN(
        session, DurableTrainingSession::Open(options.checkpoint,
                                              options.journal, &trainer));
    if (trainer.trained_through() == 0) {
      return Status::InvalidArgument("nothing trained yet; run train first");
    }
  } else {
    FATS_RETURN_NOT_OK(LoadTrainerCheckpoint(options.checkpoint, &trainer));
  }

  UnlearningOutcome outcome;
  if (client_level) {
    ClientUnlearner unlearner(&trainer);
    FATS_ASSIGN_OR_RETURN(
        outcome,
        unlearner.Unlearn(options.client, trainer.trained_through()));
    FATS_RETURN_NOT_OK(AppendDeletion(
        DeletionJournalPath(options.checkpoint),
        "client " + std::to_string(options.client)));
  } else {
    SampleUnlearner unlearner(&trainer);
    FATS_ASSIGN_OR_RETURN(
        outcome, unlearner.Unlearn({options.client, options.index},
                                   trainer.trained_through()));
    FATS_RETURN_NOT_OK(AppendDeletion(
        DeletionJournalPath(options.checkpoint),
        "sample " + std::to_string(options.client) + " " +
            std::to_string(options.index)));
  }
  std::printf("unlearned %s: recomputed=%s", client_level ? "client"
                                                          : "sample",
              outcome.recomputed ? "yes" : "no");
  if (outcome.recomputed) {
    std::printf(" (%lld iterations from t=%lld, %lld rounds, %.3fs)",
                static_cast<long long>(outcome.recomputed_iterations),
                static_cast<long long>(outcome.restart_iteration),
                static_cast<long long>(outcome.recomputed_rounds),
                outcome.wall_seconds);
  }
  std::printf("\n");
  PrintStatusLine(&trainer);
  if (session != nullptr) {
    FATS_RETURN_NOT_OK(session->status());
    FATS_RETURN_NOT_OK(session->Checkpoint());
  } else {
    FATS_RETURN_NOT_OK(SaveTrainerCheckpoint(&trainer, options.checkpoint));
  }
  std::printf("checkpoint updated: %s\n", options.checkpoint.c_str());
  return Status::OK();
}

Status RunInfo(const CliOptions& options) {
  FATS_ASSIGN_OR_RETURN(DatasetProfile profile, ResolveProfile(options));
  FederatedDataset data =
      BuildFederatedData(profile, static_cast<uint64_t>(options.seed));
  FATS_RETURN_NOT_OK(
      ReplayDeletions(DeletionJournalPath(options.checkpoint), &data));
  FatsConfig config = FatsConfig::FromProfile(profile);
  config.rho_s = options.rho_s;
  config.rho_c = options.rho_c;
  config.seed = static_cast<uint64_t>(options.seed);
  config.num_threads = options.threads;
  FATS_RETURN_NOT_OK(config.Validate());
  FatsTrainer trainer(profile.model, config, &data);
  FATS_RETURN_NOT_OK(LoadTrainerCheckpoint(options.checkpoint, &trainer));
  std::printf("%s\n", config.ToString().c_str());
  std::printf("  data     : %s\n", data.ToString().c_str());
  PrintStatusLine(&trainer);
  const double lambda = MaxGradientDiversity(
      trainer.model(), data, trainer.trained_through() /
                                 std::max<int64_t>(config.local_iters_e, 1),
      /*probes=*/4, [&trainer](int64_t round) {
        return trainer.store().GetGlobalModel(round);
      });
  std::printf("  lambda^  : %.3f (gradient diversity, Definition 5)\n",
              lambda);
  return Status::OK();
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: fats_cli <train|resume|unlearn-sample|"
                 "unlearn-client|info> [flags]\nsee --help per command\n");
    return 2;
  }
  CliOptions options;
  options.command = argv[1];

  FlagParser flags;
  std::string* profile = flags.AddString("profile", "mnist",
                                         "scaled profile name");
  std::string* checkpoint =
      flags.AddString("checkpoint", "/tmp/fats.ckpt", "checkpoint path");
  double* rho_s = flags.AddDouble("rho_s", 0.25, "sample TV-stability");
  double* rho_c = flags.AddDouble("rho_c", 0.5, "client TV-stability");
  int64_t* rounds = flags.AddInt("rounds", 0, "override profile rounds R");
  int64_t* seed = flags.AddInt("seed", 1, "workload + algorithm seed");
  int64_t* until_iter = flags.AddInt("until_iter", 0,
                                     "pause training at this iteration");
  int64_t* client = flags.AddInt("client", -1, "target client id");
  int64_t* index = flags.AddInt("index", -1, "target sample index");
  int64_t* threads = flags.AddInt(
      "threads", 1, "worker threads for client updates (bit-identical)");
  std::string* journal = flags.AddString(
      "journal", "",
      "journal path; enables crash-exact journaled sessions (recovers "
      "automatically after a crash)");
  std::string* log_csv = flags.AddString(
      "log_csv", "", "write the per-round training log as CSV here");
  std::string* fault_spec = flags.AddString(
      "fault_spec", "",
      "failpoint arming spec 'site:hit_count:action,...' "
      "(action: error|crash|torn-write|delay) for crash testing");
  std::string* transport_faults = flags.AddString(
      "transport_faults", "",
      "lossy-wire fault spec 'drop=0.2,corrupt=0.05,seed=4,...' "
      "(keys: drop|corrupt|truncate|duplicate|delay rates, seed, "
      "max_retries, backoff_base, backoff_cap); the retry protocol keeps "
      "the run trace-identical to a clean wire");
  Status parse = flags.Parse(argc - 1, argv + 1);
  if (parse.code() == StatusCode::kNotFound) return 0;  // --help
  if (!parse.ok()) {
    std::fprintf(stderr, "%s\n%s", parse.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  options.profile_name = *profile;
  options.checkpoint = *checkpoint;
  options.rho_s = *rho_s;
  options.rho_c = *rho_c;
  options.rounds = *rounds;
  options.seed = *seed;
  options.until_iter = *until_iter;
  options.client = *client;
  options.index = *index;
  options.threads = *threads;
  options.journal = *journal;
  options.log_csv = *log_csv;
  options.fault_spec = *fault_spec;
  options.transport_faults = *transport_faults;

  Status status;
  if (options.command == "train") {
    status = RunTrain(options, /*resume=*/false);
  } else if (options.command == "resume") {
    status = RunTrain(options, /*resume=*/true);
  } else if (options.command == "unlearn-sample") {
    status = RunUnlearn(options, /*client_level=*/false);
  } else if (options.command == "unlearn-client") {
    status = RunUnlearn(options, /*client_level=*/true);
  } else if (options.command == "info") {
    status = RunInfo(options);
  } else {
    std::fprintf(stderr, "unknown command: %s\n", options.command.c_str());
    return 2;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fats

int main(int argc, char** argv) { return fats::Main(argc, argv); }
