#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the FATS tree.
#
# Usage:
#   tools/run_clang_tidy.sh [-p BUILD_DIR] [FILE...]
#
# With no FILE arguments every .cc/.cpp under src/, tools/, bench/, and
# examples/ is checked; tools/ci.sh passes just the files changed on the
# branch.  BUILD_DIR must contain compile_commands.json (any configured
# build dir works; CMAKE_EXPORT_COMPILE_COMMANDS is on by default).
#
# If no clang-tidy binary is available the script warns and exits 0 so the
# rest of the toolchain (fats_lint, sanitizer tests) still gates the tree.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=""
FILES=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    -p) BUILD_DIR="$2"; shift 2 ;;
    -h|--help)
      echo "usage: tools/run_clang_tidy.sh [-p BUILD_DIR] [FILE...]"
      exit 0 ;;
    *) FILES+=("$1"); shift ;;
  esac
done

TIDY=""
for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
            clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" > /dev/null 2>&1; then
    TIDY="$cand"
    break
  fi
done
if [[ -z "$TIDY" ]]; then
  echo "run_clang_tidy: no clang-tidy binary found; skipping (install" \
       "clang-tidy to enable this check)" >&2
  exit 0
fi

if [[ -z "$BUILD_DIR" ]]; then
  for cand in build build-release build-asan; do
    if [[ -f "$cand/compile_commands.json" ]]; then
      BUILD_DIR="$cand"
      break
    fi
  done
fi
if [[ -z "$BUILD_DIR" || ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "run_clang_tidy: no compile_commands.json found; configure first," \
       "e.g. cmake --preset release" >&2
  exit 2
fi

if [[ ${#FILES[@]} -eq 0 ]]; then
  while IFS= read -r f; do
    FILES+=("$f")
  done < <(find src tools bench examples \
             \( -name '*.cc' -o -name '*.cpp' \) | sort)
fi

# Keep only C++ sources that are actually in the compilation database
# (headers are covered via HeaderFilterRegex).
TU_FILES=()
for f in "${FILES[@]}"; do
  case "$f" in
    *.cc|*.cpp) TU_FILES+=("$f") ;;
  esac
done
if [[ ${#TU_FILES[@]} -eq 0 ]]; then
  echo "run_clang_tidy: nothing to check"
  exit 0
fi

echo "run_clang_tidy: $TIDY -p $BUILD_DIR (${#TU_FILES[@]} files)"
STATUS=0
for f in "${TU_FILES[@]}"; do
  "$TIDY" -p "$BUILD_DIR" --quiet "$f" || STATUS=1
done
exit $STATUS
