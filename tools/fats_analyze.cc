// fats_analyze driver: the contract-enforcing static analyzer for the FATS
// tree.  Supersedes fats_lint — it runs the legacy token-scanner rules (see
// fats_lint_lib.h) plus the multi-pass analyzer rule families (see
// tools/analyze/rules.h): RNG stream discipline, deterministic reductions,
// failpoint coverage, Status discipline, and include-graph layering.
//
// Usage:
//   fats_analyze [--root DIR] [--json FILE|-] [--sarif FILE|-]
//                [--baseline FILE] [--quiet] [--list-rules] [PATH...]
//
// With explicit PATH arguments only those files/directories are analyzed.
// Exit status: 0 clean, 1 unsuppressed findings, 2 usage/read errors.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/report.h"
#include "fats_lint_lib.h"

namespace fs = std::filesystem;

namespace {

std::string ReadFile(const fs::path& p, bool* ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    *ok = false;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

bool IsSkippedDir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.rfind("build", 0) == 0 || name == ".git" ||
         name == "third_party";
}

void CollectFiles(const fs::path& root, std::vector<fs::path>* out) {
  if (!fs::exists(root)) return;
  if (fs::is_regular_file(root)) {
    if (fats::lint::ShouldLintFile(root.string())) out->push_back(root);
    return;
  }
  fs::recursive_directory_iterator it(
      root, fs::directory_options::skip_permission_denied);
  for (auto end = fs::recursive_directory_iterator(); it != end; ++it) {
    if (it->is_directory()) {
      if (IsSkippedDir(it->path())) it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() &&
        fats::lint::ShouldLintFile(it->path().string())) {
      out->push_back(it->path());
    }
  }
}

std::string RelativeTo(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty() || rel.string().rfind("..", 0) == 0) {
    return p.generic_string();
  }
  return rel.generic_string();
}

bool WriteReport(const std::string& dest, const std::string& content,
                 const char* what) {
  if (dest == "-") {
    std::cout << content;
    return true;
  }
  std::ofstream out(dest, std::ios::binary);
  out << content;
  if (!out) {
    std::cerr << "fats_analyze: cannot write " << what << " " << dest << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string json_out;
  std::string sarif_out;
  std::string baseline_path;
  bool quiet = false;
  std::vector<std::string> explicit_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_out = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      for (const std::string& r : fats::analyze::AllAnalyzeRules()) {
        std::cout << r << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: fats_analyze [--root DIR] [--json FILE|-] "
                   "[--sarif FILE|-] [--baseline FILE] [--quiet] "
                   "[--list-rules] [PATH...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      // A typo'd flag must not silently degrade into an empty scan that
      // "passes".
      std::cerr << "fats_analyze: unknown option '" << arg
                << "' (see --help)\n";
      return 2;
    } else {
      explicit_paths.push_back(arg);
    }
  }

  std::vector<fs::path> paths;
  if (!explicit_paths.empty()) {
    for (const std::string& p : explicit_paths) {
      if (!fs::exists(p)) {
        std::cerr << "fats_analyze: no such file or directory: " << p << "\n";
        return 2;
      }
      CollectFiles(p, &paths);
    }
  } else {
    for (const char* sub : {"src", "tools", "bench", "examples"}) {
      CollectFiles(root / sub, &paths);
    }
  }

  std::vector<fats::analyze::SourceFile> files;
  int read_errors = 0;
  for (const fs::path& path : paths) {
    bool ok = false;
    std::string content = ReadFile(path, &ok);
    if (!ok) {
      std::cerr << "fats_analyze: cannot read " << path << "\n";
      ++read_errors;
      continue;
    }
    files.push_back({RelativeTo(path, root), std::move(content)});
    // The sibling header may live outside the explicit path set (a .cc was
    // named directly); pull it in so member declarations stay visible.
    fs::path header = path;
    header.replace_extension(".h");
    if (header != path && fs::exists(header)) {
      const std::string header_rel = RelativeTo(header, root);
      bool present = false;
      for (const auto& f : files) present = present || f.path == header_rel;
      if (!present) {
        bool hok = false;
        std::string hcontent = ReadFile(header, &hok);
        if (hok) files.push_back({header_rel, std::move(hcontent)});
      }
    }
  }

  fats::analyze::AnalysisResult result = fats::analyze::AnalyzeFiles(files);

  if (!baseline_path.empty()) {
    bool ok = false;
    const std::string baseline_json = ReadFile(baseline_path, &ok);
    if (!ok) {
      std::cerr << "fats_analyze: cannot read baseline " << baseline_path
                << "\n";
      return 2;
    }
    std::vector<fats::analyze::BaselineEntry> entries;
    if (!fats::analyze::ParseBaseline(baseline_json, &entries)) {
      std::cerr << "fats_analyze: malformed baseline " << baseline_path
                << "\n";
      return 2;
    }
    const int stale =
        fats::analyze::ApplyBaseline(entries, &result.findings);
    if (stale > 0 && !quiet) {
      std::cerr << "fats_analyze: " << stale
                << " stale baseline entr(y/ies) matched nothing; prune "
                << baseline_path << "\n";
    }
  }

  if (!quiet) {
    for (const fats::lint::Finding& f : result.findings) {
      std::cerr << f.file << ":" << f.line << ": [" << f.rule << "]"
                << (f.suppressed ? " (suppressed)" : "") << " " << f.message
                << "\n";
    }
  }

  if (!json_out.empty() &&
      !WriteReport(json_out, fats::lint::ToJson(result.findings), "json")) {
    return 2;
  }
  if (!sarif_out.empty() &&
      !WriteReport(sarif_out,
                   fats::analyze::ToSarif(result.findings,
                                          fats::analyze::AllAnalyzeRules()),
                   "sarif")) {
    return 2;
  }

  const int active = fats::lint::ActiveCount(result.findings);
  if (!quiet) {
    std::cerr << "fats_analyze: analyzed " << files.size() << " files, "
              << active << " violation(s), "
              << static_cast<int>(result.findings.size()) - active
              << " suppressed\n";
  }
  if (read_errors > 0) return 2;
  return active > 0 ? 1 : 0;
}
