#!/usr/bin/env bash
# CI driver: configure -> build -> ctest -> fats_analyze -> bench gate ->
# clang-tidy -> tsan smoke of the parallel-execution tests -> chaos step
# (crash matrix + lossy-wire fault matrix) under asan-ubsan.
#
# Usage:
#   tools/ci.sh [PRESET]            # default preset: release
#   CI_BASE_REF=origin/main tools/ci.sh release
#
# PRESET is a CMakePresets.json configure preset (release, asan-ubsan,
# tsan).  clang-tidy runs on the files changed relative to CI_BASE_REF when
# that ref exists (keeps CI latency proportional to the diff), otherwise on
# the whole tree; it is skipped gracefully when clang-tidy is not installed.
set -euo pipefail

cd "$(dirname "$0")/.."

PRESET="${1:-release}"
JOBS="$(nproc 2> /dev/null || echo 2)"

echo "=== [1/8] configure (preset: $PRESET) ==="
cmake --preset "$PRESET"

echo "=== [2/8] build ==="
cmake --build --preset "$PRESET" -j "$JOBS"

echo "=== [3/8] ctest ==="
ctest --preset "$PRESET" -j "$JOBS"

BUILD_DIR="build-${PRESET}"
if [[ "$PRESET" == "asan-ubsan" ]]; then
  BUILD_DIR="build-asan"
fi

echo "=== [4/8] fats_analyze (static contract analysis) ==="
# Hard gate: the analyzer (legacy lint rules + RNG/reduction/failpoint/
# Status/layering passes) must report zero unsuppressed violations.  The
# JSON and SARIF reports are uploaded as CI artifacts.
"$BUILD_DIR/tools/fats_analyze" --root . \
  --baseline tools/fats_analyze_baseline.json \
  --json fats_analyze_report.json \
  --sarif fats_analyze_report.sarif

echo "=== [5/8] bench gate ==="
# Build + run the micro-kernel benchmarks with minimal iterations and diff
# the timings against the checked-in BENCH_kernels.json via bench_check.
# Hard gate: any kernel more than BENCH_MAX_REGRESS_PCT slower than the
# baseline fails the build.  The band is wide because CI machines are noisy;
# it exists to catch order-of-magnitude regressions (a kernel falling off
# the blocked/SIMD path), not single-digit drift.
BENCH_MAX_REGRESS_PCT="${BENCH_MAX_REGRESS_PCT:-75}"
if [[ "$PRESET" == "release" ]]; then
  # --threads=4 matches the thread count the checked-in baseline was
  # recorded with (bench_check prints both contexts for the diff).
  "$BUILD_DIR/bench/bench_micro_kernels" --threads=4 \
    --benchmark_min_time=0.01 \
    --benchmark_out="$BUILD_DIR/BENCH_kernels_current.json" \
    --benchmark_out_format=json > /dev/null
  if [[ -f BENCH_kernels.json ]]; then
    "$BUILD_DIR/tools/bench_check" BENCH_kernels.json \
      "$BUILD_DIR/BENCH_kernels_current.json" \
      --max-regress "$BENCH_MAX_REGRESS_PCT"
  else
    echo "bench gate: no BENCH_kernels.json baseline; ran benchmarks only"
  fi
  # Same gate for the unlearning request service: O(1) triage staying O(1)
  # (BM_TriageIndexed regressing toward BM_TriageScan is exactly the kind of
  # order-of-magnitude break this catches).
  "$BUILD_DIR/bench/bench_unlearn_service" \
    --benchmark_min_time=0.01 \
    --benchmark_out="$BUILD_DIR/BENCH_unlearn_current.json" \
    --benchmark_out_format=json > /dev/null
  if [[ -f BENCH_unlearn.json ]]; then
    "$BUILD_DIR/tools/bench_check" BENCH_unlearn.json \
      "$BUILD_DIR/BENCH_unlearn_current.json" \
      --max-regress "$BENCH_MAX_REGRESS_PCT"
  else
    echo "bench gate: no BENCH_unlearn.json baseline; ran benchmarks only"
  fi
  # And for the transport: frame codec throughput plus channel delivery
  # under 0/5/20% loss (a reliable-channel regression shows up as
  # attempts_per_msg exploding long before timings drift).
  "$BUILD_DIR/bench/bench_transport" \
    --benchmark_min_time=0.01 \
    --benchmark_out="$BUILD_DIR/BENCH_transport_current.json" \
    --benchmark_out_format=json > /dev/null
  if [[ -f BENCH_transport.json ]]; then
    "$BUILD_DIR/tools/bench_check" BENCH_transport.json \
      "$BUILD_DIR/BENCH_transport_current.json" \
      --max-regress "$BENCH_MAX_REGRESS_PCT"
  else
    echo "bench gate: no BENCH_transport.json baseline; ran benchmarks only"
  fi
  # And for the state layer: index-codec throughput, tiered history-log
  # append/cold-read, tree aggregation, and lazy shard materialization
  # (resident_bytes exploding in the spilled BM_HistoryLogAppend row means
  # the memory bound — the layer's reason to exist — broke).
  "$BUILD_DIR/bench/bench_state" \
    --benchmark_min_time=0.01 \
    --benchmark_out="$BUILD_DIR/BENCH_state_current.json" \
    --benchmark_out_format=json > /dev/null
  if [[ -f BENCH_state.json ]]; then
    "$BUILD_DIR/tools/bench_check" BENCH_state.json \
      "$BUILD_DIR/BENCH_state_current.json" \
      --max-regress "$BENCH_MAX_REGRESS_PCT"
  else
    echo "bench gate: no BENCH_state.json baseline; ran benchmarks only"
  fi
else
  echo "bench gate: skipped (preset $PRESET; benches run on release only)"
fi

echo "=== [6/8] clang-tidy ==="
CHANGED=()
if [[ -n "${CI_BASE_REF:-}" ]] && git rev-parse --verify -q "$CI_BASE_REF" > /dev/null; then
  while IFS= read -r f; do
    [[ -f "$f" ]] && CHANGED+=("$f")
  done < <(git diff --name-only "$CI_BASE_REF"...HEAD -- \
             'src/*.cc' 'src/*.cpp' 'tools/*.cc' 'bench/*.cc' 'examples/*.cpp')
  if [[ ${#CHANGED[@]} -eq 0 ]]; then
    echo "clang-tidy: no C++ sources changed vs $CI_BASE_REF; skipping"
  else
    tools/run_clang_tidy.sh -p "$BUILD_DIR" "${CHANGED[@]}"
  fi
else
  tools/run_clang_tidy.sh -p "$BUILD_DIR"
fi

echo "=== [7/8] tsan smoke (parallel-execution tests) ==="
# kernel_contract_test exercises the parallel GEMM at worker counts 1/2/4/7
# (the ISSUE-8 bit-identity matrix) and crash_matrix_test exercises the
# async journal's WriterThread handoff, so both are race-checked on every
# preset, not just the full tsan leg. transport_test rides along for the
# LocalTransport blocking producer/consumer pair (the wire's only
# cross-thread handoff). die_after_fork=0: the crash-matrix children
# deliberately start a writer thread after fork (sanctioned — each child
# owns its process), which TSan otherwise refuses.
if [[ "$PRESET" == "tsan" ]]; then
  echo "tsan smoke: preset is already tsan; full suite covered above"
else
  cmake --preset tsan
  cmake --build --preset tsan -j "$JOBS" \
    --target thread_pool_test parallel_exactness_test \
    kernel_contract_test crash_matrix_test transport_test
  # Run the binaries directly: only these targets are built, so the
  # build-tsan ctest manifest is incomplete.
  build-tsan/tests/thread_pool_test
  build-tsan/tests/parallel_exactness_test
  build-tsan/tests/kernel_contract_test
  build-tsan/tests/transport_test
  TSAN_OPTIONS="die_after_fork=0" build-tsan/tests/crash_matrix_test
fi

echo "=== [8/8] chaos: crash matrix + fault matrix under asan-ubsan ==="
# Re-run the failpoint kill/recover matrix with sanitizers on: recovery code
# paths (torn-tail truncation, journal replay, re-execution) are exactly the
# ones a fuzzer won't reach and a crash will. transport_exactness_test is
# the lossy-wire half of the chaos step — deterministic drop/corrupt/
# truncate/duplicate injection with the trace-identity contract asserted —
# so its frame-mangling paths (bit flips, mid-header cuts) run with the
# memory sanitizers watching.
if [[ "$PRESET" == "asan-ubsan" ]]; then
  echo "chaos step: preset is already asan-ubsan; full suite covered above"
else
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$JOBS" \
    --target crash_matrix_test journal_test failpoint_test \
    transport_exactness_test
  # Run the binaries directly: only these targets are built, so the
  # build-asan ctest manifest is incomplete.
  build-asan/tests/failpoint_test
  build-asan/tests/journal_test
  build-asan/tests/crash_matrix_test
  build-asan/tests/transport_exactness_test
fi

echo "=== CI OK (preset: $PRESET) ==="
