// bench_check: compares two google-benchmark --benchmark_out JSON files and
// reports per-benchmark timing deltas.
//
// Usage:
//   bench_check BASELINE.json CURRENT.json [--max-regress PCT]
//
// For every benchmark name present in both files it prints the baseline and
// current real_time and the ratio. Without --max-regress the tool is a
// smoke/report only (exit 0 as long as both files parse and share at least
// one benchmark) — this is how tools/ci.sh runs it, so CI latency noise
// cannot fail a build. With --max-regress PCT it exits 1 when any shared
// benchmark got slower by more than PCT percent, which is the intended
// gating mode once a pinned-hardware runner exists.
//
// Build-type gate (always on, both modes): a file whose run context records
// a debug build is rejected with exit 2 — debug timings are meaningless as
// baselines, and comparing debug against release manufactures phantom
// regressions. The check prefers the "fats_build_type" custom key (written
// by bench_micro_kernels from its own NDEBUG, so it reflects the code under
// test) and falls back to google-benchmark's "library_build_type" (which
// tracks only how the vendored benchmark library was compiled) for files
// recorded before the custom key existed.
//
// The parser is deliberately minimal: it understands exactly the subset of
// JSON that google-benchmark emits (a "benchmarks" array of flat objects)
// and has no third-party dependencies.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct BenchEntry {
  std::string name;
  double real_time = 0.0;
  std::string time_unit;
  double items_per_second = 0.0;  // 0 when absent
};

std::string ReadFile(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

// Extracts a quoted string value for `key` from the object slice [begin,end).
bool FindStringField(const std::string& text, size_t begin, size_t end,
                     const std::string& key, std::string* out) {
  const std::string needle = "\"" + key + "\"";
  size_t pos = text.find(needle, begin);
  if (pos == std::string::npos || pos >= end) return false;
  pos = text.find('"', text.find(':', pos + needle.size()) + 1);
  if (pos == std::string::npos || pos >= end) return false;
  const size_t close = text.find('"', pos + 1);
  if (close == std::string::npos || close > end) return false;
  *out = text.substr(pos + 1, close - pos - 1);
  return true;
}

bool FindNumberField(const std::string& text, size_t begin, size_t end,
                     const std::string& key, double* out) {
  const std::string needle = "\"" + key + "\"";
  size_t pos = text.find(needle, begin);
  if (pos == std::string::npos || pos >= end) return false;
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos || pos >= end) return false;
  *out = std::strtod(text.c_str() + pos + 1, nullptr);
  return true;
}

// Run-context fields live before the "benchmarks" array. Returns the value
// of `key` from that prefix, or "" when absent.
std::string ContextField(const std::string& text, const std::string& key) {
  size_t limit = text.find("\"benchmarks\"");
  if (limit == std::string::npos) limit = text.size();
  std::string value;
  if (!FindStringField(text, 0, limit, key, &value)) return "";
  return value;
}

// The recorded build type: "fats_build_type" (bench_micro_kernels' own
// NDEBUG) when present, else "library_build_type". "" when neither exists.
std::string ContextBuildType(const std::string& text) {
  const std::string own = ContextField(text, "fats_build_type");
  if (!own.empty()) return own;
  return ContextField(text, "library_build_type");
}

bool IsDebugBuildType(const std::string& build_type) {
  std::string lower = build_type;
  for (char& c : lower) c = static_cast<char>(std::tolower(c));
  return lower.find("debug") != std::string::npos;
}

/// Parses the "benchmarks" array of a google-benchmark JSON file.
bool ParseBenchJson(const std::string& text, std::vector<BenchEntry>* out) {
  const size_t arr = text.find("\"benchmarks\"");
  if (arr == std::string::npos) return false;
  size_t pos = text.find('[', arr);
  if (pos == std::string::npos) return false;
  const size_t arr_end = text.find(']', pos);
  while (true) {
    const size_t obj_begin = text.find('{', pos);
    if (obj_begin == std::string::npos || obj_begin > arr_end) break;
    // Benchmark entries are flat objects — no nested braces.
    const size_t obj_end = text.find('}', obj_begin);
    if (obj_end == std::string::npos) return false;
    BenchEntry e;
    if (FindStringField(text, obj_begin, obj_end, "name", &e.name)) {
      FindNumberField(text, obj_begin, obj_end, "real_time", &e.real_time);
      FindStringField(text, obj_begin, obj_end, "time_unit", &e.time_unit);
      FindNumberField(text, obj_begin, obj_end, "items_per_second",
                      &e.items_per_second);
      // Skip aggregate rows (mean/median/stddev repeats of the same name).
      std::string run_type;
      if (!FindStringField(text, obj_begin, obj_end, "run_type", &run_type) ||
          run_type == "iteration") {
        out->push_back(e);
      }
    }
    pos = obj_end + 1;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  double max_regress_pct = -1.0;  // < 0: report-only smoke mode
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-regress") == 0 && i + 1 < argc) {
      max_regress_pct = std::strtod(argv[++i], nullptr);
    } else if (baseline_path.empty()) {
      baseline_path = argv[i];
    } else if (current_path.empty()) {
      current_path = argv[i];
    } else {
      std::fprintf(stderr, "bench_check: unexpected argument %s\n", argv[i]);
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(
        stderr,
        "usage: bench_check BASELINE.json CURRENT.json [--max-regress PCT]\n");
    return 2;
  }

  bool ok = false;
  const std::string baseline_text = ReadFile(baseline_path, &ok);
  if (!ok) {
    std::fprintf(stderr, "bench_check: cannot read %s\n",
                 baseline_path.c_str());
    return 2;
  }
  const std::string current_text = ReadFile(current_path, &ok);
  if (!ok) {
    std::fprintf(stderr, "bench_check: cannot read %s\n", current_path.c_str());
    return 2;
  }
  const struct {
    const std::string* path;
    const std::string* text;
    const char* role;
  } inputs[] = {{&baseline_path, &baseline_text, "baseline"},
                {&current_path, &current_text, "current"}};
  for (const auto& input : inputs) {
    const std::string build_type = ContextBuildType(*input.text);
    if (IsDebugBuildType(build_type)) {
      std::fprintf(stderr,
                   "bench_check: %s %s records a debug build "
                   "(build type \"%s\"); re-record from a release build\n",
                   input.role, input.path->c_str(), build_type.c_str());
      return 2;
    }
    const std::string threads = ContextField(*input.text, "fats_threads");
    std::printf("%s: build_type=%s threads=%s\n", input.role,
                build_type.empty() ? "(unrecorded)" : build_type.c_str(),
                threads.empty() ? "(unrecorded)" : threads.c_str());
  }

  std::vector<BenchEntry> baseline;
  std::vector<BenchEntry> current;
  if (!ParseBenchJson(baseline_text, &baseline)) {
    std::fprintf(stderr, "bench_check: no benchmarks parsed from %s\n",
                 baseline_path.c_str());
    return 2;
  }
  if (!ParseBenchJson(current_text, &current)) {
    std::fprintf(stderr, "bench_check: no benchmarks parsed from %s\n",
                 current_path.c_str());
    return 2;
  }

  std::map<std::string, BenchEntry> base_by_name;
  for (const BenchEntry& e : baseline) base_by_name[e.name] = e;

  int shared = 0;
  int regressions = 0;
  std::printf("%-40s %14s %14s %8s\n", "benchmark", "baseline", "current",
              "ratio");
  for (const BenchEntry& cur : current) {
    auto it = base_by_name.find(cur.name);
    if (it == base_by_name.end()) {
      std::printf("%-40s %14s %14.1f %8s\n", cur.name.c_str(), "(new)",
                  cur.real_time, "-");
      continue;
    }
    ++shared;
    const BenchEntry& base = it->second;
    const double ratio =
        base.real_time > 0.0 ? cur.real_time / base.real_time : 0.0;
    const bool regressed =
        max_regress_pct >= 0.0 && ratio > 1.0 + max_regress_pct / 100.0;
    if (regressed) ++regressions;
    std::printf("%-40s %12.1f%-2s %12.1f%-2s %7.2fx%s\n", cur.name.c_str(),
                base.real_time, base.time_unit.c_str(), cur.real_time,
                cur.time_unit.c_str(), ratio, regressed ? "  REGRESSED" : "");
  }
  if (shared == 0) {
    std::fprintf(stderr,
                 "bench_check: no benchmark names shared between files\n");
    return 2;
  }
  if (max_regress_pct >= 0.0) {
    std::printf("%d/%d benchmarks regressed beyond %.0f%%\n", regressions,
                shared, max_regress_pct);
    return regressions > 0 ? 1 : 0;
  }
  std::printf("%d benchmarks compared (report only; no gating threshold)\n",
              shared);
  return 0;
}
