// Report emission (SARIF 2.1.0) and baseline handling for fats_analyze.
//
// The baseline file is a checked-in JSON array of accepted findings:
//
//   [ {"rule": "nondet-reduction", "file": "src/fl/x.cc", "line": 42}, ... ]
//
// `line` is optional — omitting it baselines every finding of that rule in
// that file, which keeps the baseline stable across unrelated edits.  A
// finding matching a baseline entry is reported with suppressed=true (same
// mechanism as an inline allow() comment) so it never fails the run, but
// remains visible in the JSON/SARIF output.  Policy (DESIGN.md §7.4): new
// code takes inline suppressions with a justification; the baseline exists
// to ratchet legacy debt down and should only ever shrink.

#ifndef FATS_TOOLS_ANALYZE_REPORT_H_
#define FATS_TOOLS_ANALYZE_REPORT_H_

#include <string>
#include <vector>

#include "fats_lint_lib.h"

namespace fats::analyze {

struct BaselineEntry {
  std::string rule;
  std::string file;
  int line = 0;  // 0 = any line
};

// Parses the baseline JSON.  Returns false (and leaves *entries empty) on
// malformed input; the driver treats that as a hard error rather than
// silently analyzing without the baseline.
bool ParseBaseline(std::string_view json, std::vector<BaselineEntry>* entries);

// Marks findings covered by a baseline entry as suppressed.  Returns the
// number of entries that matched nothing (stale entries to prune).
int ApplyBaseline(const std::vector<BaselineEntry>& entries,
                  std::vector<lint::Finding>* findings);

// SARIF 2.1.0 log with one run; every rule in `rules` is declared in the
// driver metadata, each finding becomes a result with level "error" (or
// "note" when suppressed, with a suppression object attached).
std::string ToSarif(const std::vector<lint::Finding>& findings,
                    const std::vector<std::string>& rules);

}  // namespace fats::analyze

#endif  // FATS_TOOLS_ANALYZE_REPORT_H_
