// Internal helpers shared by the fats_analyze rule passes.

#ifndef FATS_TOOLS_ANALYZE_RULES_UTIL_H_
#define FATS_TOOLS_ANALYZE_RULES_UTIL_H_

#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analyze/code_model.h"

namespace fats::analyze {

// Appends a finding, honoring the file's suppression directives.
inline void AddFinding(const FileModel& model, const char* rule, int line,
                       std::string message,
                       std::vector<lint::Finding>* findings) {
  lint::Finding f;
  f.rule = rule;
  f.file = model.source->path;
  f.line = line;
  f.message = std::move(message);
  f.suppressed = model.suppressions.Allows(line, f.rule);
  findings->push_back(std::move(f));
}

// RngStream draw methods: a call to one of these consumes stream state.
inline const std::set<std::string_view>& DrawMethods() {
  static const auto* kSet = new std::set<std::string_view>{
      "NextUInt32", "NextUInt64", "NextDouble",
      "UniformInt", "NextGaussian", "NextBernoulli"};
  return *kSet;
}

// Token extent [begin, end) of the body of a loop that iterates an
// unordered container (range-for over a declared unordered name, or an
// explicit `name.begin()` iterator loop).
struct UnorderedLoop {
  size_t body_begin = 0;
  size_t body_end = 0;
  int line = 0;
};

// Finds loops over any of `unordered_names` in the token stream.
std::vector<UnorderedLoop> FindUnorderedLoops(
    const std::vector<Token>& tokens,
    const std::vector<std::string>& unordered_names);

// True if an identifier is declared with a float/double(-backed) type
// somewhere in the file: `float x`, `double& x`, `std::vector<float> x`,
// `Tensor x`, or a float/double pointer.  Heuristic by design.
bool FloatTypedInFile(const std::vector<Token>& tokens,
                      std::string_view var_name);

// Token ranges of the argument lists of every `ParallelFor(...)` call in
// the file, as [open_paren + 1, close_paren) extents.
std::vector<std::pair<size_t, size_t>> ParallelForArgRanges(
    const std::vector<Token>& tokens);

}  // namespace fats::analyze

#endif  // FATS_TOOLS_ANALYZE_RULES_UTIL_H_
