#include "analyze/lexer.h"

#include <cctype>

namespace fats::analyze {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Two-character operators worth fusing so the rule passes can match them as
// single tokens.  Three-character operators (<<=, ...) are irrelevant to the
// rules and lex as two tokens; that is fine.
bool IsFusedPair(char a, char b) {
  switch (a) {
    case ':':
      return b == ':';
    case '+':
      return b == '=' || b == '+';
    case '-':
      return b == '=' || b == '>' || b == '-';
    case '*':
    case '/':
    case '%':
    case '!':
    case '=':
    case '^':
      return b == '=';
    case '<':
      return b == '=' || b == '<';
    case '>':
      return b == '=' || b == '>';
    case '&':
      return b == '&' || b == '=';
    case '|':
      return b == '|' || b == '=';
    default:
      return false;
  }
}

}  // namespace

std::vector<Token> Lex(std::string_view stripped) {
  std::vector<Token> tokens;
  tokens.reserve(stripped.size() / 4);
  int line = 1;
  size_t i = 0;
  while (i < stripped.size()) {
    const char c = stripped[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    tok.line = line;
    if (IsIdentStart(c)) {
      size_t end = i + 1;
      while (end < stripped.size() && IsIdentChar(stripped[end])) ++end;
      tok.kind = TokKind::kIdent;
      tok.text = stripped.substr(i, end - i);
      i = end;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      // Digits, hex/bin prefixes, suffixes, digit separators, and the
      // exponent forms 1e+5 / 0x1p-3.  Over-accepting is fine: the rules
      // only ever ask "is this token a number".
      size_t end = i + 1;
      while (end < stripped.size() &&
             (IsIdentChar(stripped[end]) || stripped[end] == '.' ||
              stripped[end] == '\'' ||
              ((stripped[end] == '+' || stripped[end] == '-') &&
               (stripped[end - 1] == 'e' || stripped[end - 1] == 'E' ||
                stripped[end - 1] == 'p' || stripped[end - 1] == 'P')))) {
        ++end;
      }
      tok.kind = TokKind::kNumber;
      tok.text = stripped.substr(i, end - i);
      i = end;
    } else {
      size_t len = 1;
      if (i + 1 < stripped.size() && IsFusedPair(c, stripped[i + 1])) len = 2;
      tok.kind = TokKind::kPunct;
      tok.text = stripped.substr(i, len);
      i += len;
    }
    tokens.push_back(tok);
  }
  return tokens;
}

size_t MatchForward(const std::vector<Token>& tokens, size_t open) {
  if (open >= tokens.size() || tokens[open].kind != TokKind::kPunct) {
    return kNoMatch;
  }
  char opener = tokens[open].text[0];
  char closer;
  switch (opener) {
    case '(':
      closer = ')';
      break;
    case '[':
      closer = ']';
      break;
    case '{':
      closer = '}';
      break;
    case '<':
      closer = '>';
      break;
    default:
      return kNoMatch;
  }
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kPunct || tokens[i].text.size() != 1) {
      // `<` matching must also bail on statement ends: a stray comparison
      // would otherwise swallow the rest of the file.
      if (opener == '<' && IsPunct(tokens, i, ";")) return kNoMatch;
      continue;
    }
    const char t = tokens[i].text[0];
    if (t == opener) {
      ++depth;
    } else if (t == closer) {
      if (--depth == 0) return i + 1;
    } else if (opener == '<' && t == ';') {
      return kNoMatch;
    }
  }
  return kNoMatch;
}

bool IsIdent(const std::vector<Token>& tokens, size_t i,
             std::string_view text) {
  return i < tokens.size() && tokens[i].kind == TokKind::kIdent &&
         tokens[i].text == text;
}

bool IsPunct(const std::vector<Token>& tokens, size_t i,
             std::string_view text) {
  return i < tokens.size() && tokens[i].kind == TokKind::kPunct &&
         tokens[i].text == text;
}

}  // namespace fats::analyze
