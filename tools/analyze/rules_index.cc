// Index-building pass: one sweep over every file before any rule runs,
// collecting the cross-file state the rules need — the set of functions
// declared to return Status/Result<T> by value (for discarded-status), the
// registered failpoint site names (for diagnostics and tooling), and the
// include graph (for the layering rules).

#include <regex>
#include <set>

#include "analyze/rules.h"

namespace fats::analyze {
namespace {

// Keywords that make an `ident ident (` triple something other than a
// declaration (`else Fn(...)`, `return make(...)`, `case kX(...)`), plus
// type-position words that precede the real return type.
const std::set<std::string_view>& NotAReturnType() {
  static const auto* kSet = new std::set<std::string_view>{
      "if",       "else",     "do",        "while",    "for",
      "switch",   "return",   "case",      "new",      "delete",
      "throw",    "goto",     "co_return", "co_await", "co_yield",
      "sizeof",   "typedef",  "using",     "template", "typename",
      "operator", "Status",   "Result",    "StatusOr"};
  return *kSet;
}

}  // namespace

std::vector<std::string> AnalyzerRules() {
  return {kRuleRngRawKey,      kRuleRngSharedStream,     kRuleRngUnorderedDraw,
          kRuleNondetReduction, kRuleFailpointGap,       kRuleDiscardedStatus,
          kRuleLayerOrder,     kRuleLayerCycle,
          kRuleStoreMutationBypass, kRuleRawWire, kRuleTileOverlap,
          kRuleResidentHistory};
}

void IndexFile(const FileModel& model, AnalysisIndex* index) {
  const std::vector<Token>& tokens = model.tokens;

  // Status-returning functions: `Status Name(` — by-value return only, so
  // `Status& Accessor(` and `Status::OK()` do not match.  Result<T>:
  // `Result < ... > Name (`.
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent) continue;
    // Other-typed declarations of the same names: `void Append(`,
    // `uint64_t U64(` — any `ident ident (` whose first word is not a
    // Status type and not a keyword marks the name ambiguous.
    if (NotAReturnType().count(tokens[i].text) == 0 &&
        tokens[i + 1].kind == TokKind::kIdent &&
        NotAReturnType().count(tokens[i + 1].text) == 0 &&
        IsPunct(tokens, i + 2, "(")) {
      index->nonstatus_functions.insert(std::string(tokens[i + 1].text));
    }
    if (tokens[i].text == "Status") {
      if (tokens[i + 1].kind == TokKind::kIdent &&
          IsPunct(tokens, i + 2, "(")) {
        index->status_functions.insert(std::string(tokens[i + 1].text));
      }
    } else if (tokens[i].text == "Result" || tokens[i].text == "StatusOr") {
      if (!IsPunct(tokens, i + 1, "<")) continue;
      const size_t past = MatchForward(tokens, i + 1);
      if (past >= tokens.size()) continue;
      if (tokens[past].kind == TokKind::kIdent &&
          IsPunct(tokens, past + 1, "(")) {
        index->status_functions.insert(std::string(tokens[past].text));
      }
    }
  }

  // Failpoint sites come from the raw content: the site names are string
  // literals, which the stripped text blanks.
  static const std::regex kSite(
      R"((?:FATS_FAILPOINT(?:_STATUS)?|RegisterSite)\s*\(\s*"([^"]+)\")");
  const std::string& content = model.source->content;
  for (std::sregex_iterator it(content.begin(), content.end(), kSite), end;
       it != end; ++it) {
    index->failpoint_sites.insert((*it)[1].str());
  }

  index->includes.AddFile(model.source->path, content);
}

}  // namespace fats::analyze
