#include "analyze/analyzer.h"

#include <algorithm>
#include <tuple>

namespace fats::analyze {
namespace {

// "src/io/journal.cc" -> "src/io/journal.h"; "" when not a .cc path.
std::string SiblingHeaderPath(const std::string& path) {
  const size_t dot = path.rfind('.');
  if (dot == std::string::npos) return "";
  const std::string ext = path.substr(dot);
  if (ext != ".cc" && ext != ".cpp" && ext != ".cxx") return "";
  return path.substr(0, dot) + ".h";
}

}  // namespace

std::vector<std::string> AllAnalyzeRules() {
  std::vector<std::string> rules = lint::AllRules();
  for (std::string& r : AnalyzerRules()) rules.push_back(std::move(r));
  return rules;
}

AnalysisResult AnalyzeFiles(const std::vector<SourceFile>& files,
                            const AnalyzeOptions& options) {
  AnalysisResult result;

  std::vector<FileModel> models;
  models.reserve(files.size());
  for (const SourceFile& file : files) {
    models.push_back(BuildFileModel(file));
  }

  // A .cc sees the unordered-container declarations of its sibling header
  // when the header is part of the analyzed set.
  for (size_t i = 0; i < models.size(); ++i) {
    const std::string header = SiblingHeaderPath(files[i].path);
    if (header.empty()) continue;
    for (const FileModel& other : models) {
      if (other.source->path != header) continue;
      for (const std::string& name : other.unordered_names) {
        if (std::find(models[i].unordered_names.begin(),
                      models[i].unordered_names.end(),
                      name) == models[i].unordered_names.end()) {
          models[i].unordered_names.push_back(name);
        }
      }
    }
  }

  for (const FileModel& model : models) {
    IndexFile(model, &result.index);
  }

  for (size_t i = 0; i < models.size(); ++i) {
    const FileModel& model = models[i];
    if (options.legacy_rules) {
      std::vector<std::string_view> extra;
      const std::string header = SiblingHeaderPath(files[i].path);
      if (!header.empty()) {
        for (const SourceFile& other : files) {
          if (other.path == header) extra.push_back(other.content);
        }
      }
      std::vector<lint::Finding> legacy = lint::ScanSource(
          model.source->path, model.source->content, model.file_class, extra);
      for (lint::Finding& f : legacy) {
        result.findings.push_back(std::move(f));
      }
    }
    CheckRngDiscipline(model, &result.findings);
    CheckReductions(model, &result.findings);
    CheckFailpointCoverage(model, &result.findings);
    CheckStatusDiscipline(model, result.index, &result.findings);
    CheckStoreMutation(model, &result.findings);
    CheckWireDiscipline(model, &result.findings);
    CheckTileOwnership(model, &result.findings);
    CheckHistoryResidency(model, &result.findings);
  }

  CheckLayering(result.index, models, &result.findings);

  std::sort(result.findings.begin(), result.findings.end(),
            [](const lint::Finding& a, const lint::Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return result;
}

}  // namespace fats::analyze
