// RNG stream discipline (rule family 1): rng-raw-key, rng-shared-stream,
// rng-unordered-draw.  See rules.h for the catalog.

#include <algorithm>

#include "analyze/rules.h"
#include "analyze/rules_util.h"

namespace fats::analyze {
namespace {

// True when the token range [begin, end) contains only numeric literals and
// operator punctuation — i.e. a key expression with no identifier anywhere,
// which can only be a hand-rolled constant key.
bool LiteralOnlyExpression(const std::vector<Token>& tokens, size_t begin,
                           size_t end) {
  bool saw_number = false;
  for (size_t i = begin; i < end; ++i) {
    if (tokens[i].kind == TokKind::kIdent) return false;
    if (tokens[i].kind == TokKind::kNumber) saw_number = true;
  }
  return saw_number;
}

// Counts top-level commas in the argument range [begin, end).
int TopLevelCommas(const std::vector<Token>& tokens, size_t begin,
                   size_t end) {
  int depth = 0;
  int commas = 0;
  for (size_t i = begin; i < end; ++i) {
    if (tokens[i].kind != TokKind::kPunct || tokens[i].text.size() != 1) {
      continue;
    }
    const char c = tokens[i].text[0];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) ++commas;
  }
  return commas;
}

// For a type name at token index i, returns the index of the opening '(' or
// '{' of a construction — either directly (`RngStream(...)`, a temporary)
// or after a variable name (`RngStream rng(...)`).  tokens.size() if the
// mention is not a construction.
size_t ConstructionOpen(const std::vector<Token>& tokens, size_t i) {
  if (IsPunct(tokens, i + 1, "(") || IsPunct(tokens, i + 1, "{")) {
    return i + 1;
  }
  if (i + 2 < tokens.size() && tokens[i + 1].kind == TokKind::kIdent &&
      (IsPunct(tokens, i + 2, "(") || IsPunct(tokens, i + 2, "{"))) {
    return i + 2;
  }
  return tokens.size();
}

void CheckRawKeys(const FileModel& model,
                  std::vector<lint::Finding>* findings) {
  // src/rng/ itself is the engine's home and tests-by-raw-key territory.
  if (!model.file_class.rng_rules) return;
  const std::vector<Token>& tokens = model.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent) continue;
    if (tokens[i].text == "PhiloxEngine") {
      const size_t open = ConstructionOpen(tokens, i);
      if (open == tokens.size()) continue;
      AddFinding(model, kRuleRngRawKey, tokens[i].line,
                 "PhiloxEngine constructed outside src/rng/: raw engines "
                 "bypass the stream-addressing scheme; draw through an "
                 "RngStream keyed by DeriveStreamKey(root_seed, StreamId)",
                 findings);
      continue;
    }
    if (tokens[i].text != "RngStream") continue;
    const size_t open = ConstructionOpen(tokens, i);
    if (open == tokens.size() || !IsPunct(tokens, open, "(")) continue;
    const size_t close = MatchForward(tokens, open);
    if (close == kNoMatch) continue;
    // Single-argument form is the raw-key constructor.  A literal-only key
    // cannot be re-derived by replay; keys must flow from DeriveStreamKey.
    if (TopLevelCommas(tokens, open + 1, close - 1) == 0 &&
        LiteralOnlyExpression(tokens, open + 1, close - 1)) {
      AddFinding(model, kRuleRngRawKey, tokens[i].line,
                 "RngStream constructed from a literal raw key: stream keys "
                 "must come from DeriveStreamKey over a structured StreamId "
                 "(purpose/generation/round/client/iteration) so unlearning "
                 "replay can re-derive them",
                 findings);
    }
  }
}

// Reports draws on streams shared across ParallelFor worker tasks.
void CheckSharedStreams(const FileModel& model,
                        std::vector<lint::Finding>* findings) {
  const std::vector<Token>& tokens = model.tokens;
  for (const auto& [args_begin, args_end] : ParallelForArgRanges(tokens)) {
    for (const LambdaBody& lambda :
         FindLambdas(tokens, args_begin, args_end)) {
      for (size_t i = lambda.body_begin; i + 1 < lambda.body_end; ++i) {
        if (tokens[i].kind != TokKind::kIdent ||
            DrawMethods().count(tokens[i].text) == 0 ||
            !IsPunct(tokens, i + 1, "(")) {
          continue;
        }
        // Receiver chain: `X.Next...` or `X->Next...`.  An indexed receiver
        // (`streams[i].Next...`) is per-task by construction and exempt.
        if (i < 2) continue;
        if (!IsPunct(tokens, i - 1, ".") && !IsPunct(tokens, i - 1, "->")) {
          continue;
        }
        const Token& recv = tokens[i - 2];
        if (recv.kind == TokKind::kPunct && recv.text == "]") continue;
        if (recv.kind != TokKind::kIdent) continue;
        const std::string name(recv.text);
        const bool is_param =
            std::find(lambda.param_names.begin(), lambda.param_names.end(),
                      name) != lambda.param_names.end();
        const bool declared_inside =
            DeclaresVariable(tokens, lambda.body_begin, lambda.body_end,
                             "RngStream", name) ||
            DeclaresVariable(tokens, lambda.body_begin, lambda.body_end,
                             "auto", name);
        if (is_param || declared_inside) continue;
        AddFinding(
            model, kRuleRngSharedStream, tokens[i].line,
            "draw on RNG stream '" + name +
                "' captured from outside a ParallelFor task body: worker "
                "tasks racing on one engine make the draw order depend on "
                "the schedule; pre-derive per-task keys in serial order and "
                "construct the stream inside the task",
            findings);
      }
    }
  }
}

// Reports draws (or stream constructions) inside unordered-container loops.
void CheckUnorderedDraws(const FileModel& model,
                         std::vector<lint::Finding>* findings) {
  const std::vector<Token>& tokens = model.tokens;
  for (const UnorderedLoop& loop :
       FindUnorderedLoops(tokens, model.unordered_names)) {
    for (size_t i = loop.body_begin; i < loop.body_end; ++i) {
      if (tokens[i].kind != TokKind::kIdent) continue;
      const bool is_draw = DrawMethods().count(tokens[i].text) > 0 &&
                           IsPunct(tokens, i + 1, "(") && i >= 1 &&
                           (IsPunct(tokens, i - 1, ".") ||
                            IsPunct(tokens, i - 1, "->"));
      const bool is_ctor = tokens[i].text == "RngStream" &&
                           ConstructionOpen(tokens, i) != tokens.size();
      if (!is_draw && !is_ctor) continue;
      AddFinding(model, kRuleRngUnorderedDraw, tokens[i].line,
                 "RNG use inside iteration over an unordered container: "
                 "hash order decides the draw order, so two runs consume "
                 "the stream differently and replay diverges; iterate in a "
                 "sorted or insertion order instead",
                 findings);
    }
  }
}

}  // namespace

void CheckRngDiscipline(const FileModel& model,
                        std::vector<lint::Finding>* findings) {
  CheckRawKeys(model, findings);
  CheckSharedStreams(model, findings);
  CheckUnorderedDraws(model, findings);
}

}  // namespace fats::analyze
