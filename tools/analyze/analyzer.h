// fats_analyze orchestration: builds per-file models, runs the index pass,
// then the legacy token-scanner rules (fats_lint_lib) plus the analyzer rule
// families, and returns one merged, deterministically ordered finding list.

#ifndef FATS_TOOLS_ANALYZE_ANALYZER_H_
#define FATS_TOOLS_ANALYZE_ANALYZER_H_

#include <string>
#include <vector>

#include "analyze/code_model.h"
#include "analyze/rules.h"
#include "fats_lint_lib.h"

namespace fats::analyze {

struct AnalyzeOptions {
  // Run the legacy fats_lint token-scanner rules alongside the analyzer
  // passes (the default: fats_analyze is a superset of fats_lint).
  bool legacy_rules = true;
};

struct AnalysisResult {
  // Sorted by (file, line, rule); suppressed findings included.
  std::vector<lint::Finding> findings;
  AnalysisIndex index;
};

// Analyzes an in-memory file set.  Sibling headers present in `files` extend
// a .cc's unordered-name scope, mirroring the fats_lint driver behavior.
AnalysisResult AnalyzeFiles(const std::vector<SourceFile>& files,
                            const AnalyzeOptions& options = {});

// Every rule ID fats_analyze can emit: lint::AllRules() + AnalyzerRules().
std::vector<std::string> AllAnalyzeRules();

}  // namespace fats::analyze

#endif  // FATS_TOOLS_ANALYZE_ANALYZER_H_
