#include "analyze/report.h"

#include <regex>
#include <sstream>

namespace fats::analyze {
namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool ParseBaseline(std::string_view json,
                   std::vector<BaselineEntry>* entries) {
  entries->clear();
  const std::string text(json);
  // Accept exactly the shape we emit: an array of flat objects with string
  // "rule"/"file" and optional integer "line".  Anything else is malformed.
  static const std::regex kNonSpace(R"(\S)");
  std::smatch first;
  if (!std::regex_search(text, first, kNonSpace)) return true;  // empty file
  if (*first[0].first != '[') return false;

  static const std::regex kObject(R"(\{[^{}]*\})");
  static const std::regex kRule(R"re("rule"\s*:\s*"([^"]*)")re");
  static const std::regex kFile(R"re("file"\s*:\s*"([^"]*)")re");
  static const std::regex kLine(R"("line"\s*:\s*(\d+))");
  for (std::sregex_iterator it(text.begin(), text.end(), kObject), end;
       it != end; ++it) {
    const std::string obj = it->str();
    std::smatch rule_m, file_m, line_m;
    if (!std::regex_search(obj, rule_m, kRule) ||
        !std::regex_search(obj, file_m, kFile)) {
      entries->clear();
      return false;
    }
    BaselineEntry entry;
    entry.rule = rule_m[1].str();
    entry.file = file_m[1].str();
    if (std::regex_search(obj, line_m, kLine)) {
      entry.line = std::stoi(line_m[1].str());
    }
    entries->push_back(std::move(entry));
  }
  return true;
}

int ApplyBaseline(const std::vector<BaselineEntry>& entries,
                  std::vector<lint::Finding>* findings) {
  int stale = 0;
  for (const BaselineEntry& entry : entries) {
    bool matched = false;
    for (lint::Finding& f : *findings) {
      if (f.rule != entry.rule || f.file != entry.file) continue;
      if (entry.line != 0 && f.line != entry.line) continue;
      f.suppressed = true;
      matched = true;
    }
    if (!matched) ++stale;
  }
  return stale;
}

std::string ToSarif(const std::vector<lint::Finding>& findings,
                    const std::vector<std::string>& rules) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"fats_analyze\",\n"
      << "          \"informationUri\": "
         "\"https://example.invalid/fats/DESIGN.md\",\n"
      << "          \"rules\": [\n";
  for (size_t i = 0; i < rules.size(); ++i) {
    out << "            {\"id\": \"" << JsonEscape(rules[i]) << "\"}"
        << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const lint::Finding& f = findings[i];
    out << "        {\n"
        << "          \"ruleId\": \"" << JsonEscape(f.rule) << "\",\n"
        << "          \"level\": \"" << (f.suppressed ? "note" : "error")
        << "\",\n"
        << "          \"message\": {\"text\": \"" << JsonEscape(f.message)
        << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": {\"uri\": \""
        << JsonEscape(f.file) << "\"},\n"
        << "                \"region\": {\"startLine\": " << f.line << "}\n"
        << "              }\n"
        << "            }\n"
        << "          ]";
    if (f.suppressed) {
      out << ",\n          \"suppressions\": [{\"kind\": \"inSource\"}]";
    }
    out << "\n        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace fats::analyze
