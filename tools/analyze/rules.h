// fats_analyze rule passes.  Every rule reports fats::lint::Finding with a
// stable rule ID; suppression uses the same `// fats-lint: allow(<rule>)`
// syntax as the token-scanner rules (see fats_lint_lib.h).
//
// Rule catalog (DESIGN.md §7.4):
//
//   rng-raw-key        PhiloxEngine constructed outside src/rng/, or an
//                      RngStream built from a literal-only raw key: stream
//                      keys must come from DeriveStreamKey over a structured
//                      StreamId, or replay cannot re-derive them.
//   rng-shared-stream  an RNG draw inside a ParallelFor task on a stream
//                      declared outside the task body: worker tasks racing
//                      on one engine make the draw order schedule-dependent.
//                      Per-task streams must be constructed inside the task
//                      from pre-derived keys (slot-indexed receivers are
//                      exempt for that reason).
//   rng-unordered-draw an RNG draw (or stream construction) inside a loop
//                      over an unordered container: hash order decides the
//                      draw order, so two runs consume the stream
//                      differently.
//   nondet-reduction   float/double `+=`/`-=` accumulation onto shared state
//                      inside a ParallelFor task body (not slot-indexed by
//                      the task index), or inside a loop over an unordered
//                      container: the reduction order differs run to run, so
//                      the sum differs in the low bits and the exactness
//                      proof dies.
//   failpoint-gap      a function in src/io that calls a durable-write
//                      primitive (fsync/fdatasync/rename/truncate/fwrite or
//                      fopen for write) with no failpoint site in its body:
//                      the crash matrix cannot kill inside it, so its
//                      recovery path is untested.
//   discarded-status   a Status/Result-returning call used as a bare
//                      statement, or cast to (void) without a
//                      `// fats-lint: allow(discarded-status)` suppression:
//                      silently dropped I/O errors void the durability
//                      contract.
//   layer-order        an #include of a higher-rank module (see
//                      include_graph.h for the layer DAG).
//   layer-cycle        a module-level include cycle among src/ modules.
//   store-mutation-bypass
//                      a StateStore mutator (SaveMinibatch, SaveClient-
//                      Selection, SaveLocalModel, SaveGlobalModel,
//                      TruncateFromIteration, Clear) called on the trainer's
//                      store from src/core outside fats_trainer itself: the
//                      mutation skips the durable event sink and must go
//                      through the trainer's wrapper API instead.
//   raw-wire           a frame codec (EncodeFrame/Decode*Payload/...), ring
//                      buffer primitive (PushFrame/PopFrame), or POSIX
//                      socket call outside src/transport within src/core,
//                      src/fl, or src/io: model traffic that skips the
//                      reliable channel skips the retry/backoff/CRC-reject
//                      protocol that keeps lossy runs exact (§7.7).
//   tile-overlap       (src/tensor only) a subscripted write inside a
//                      ParallelFor task body whose index depends on neither
//                      a lambda parameter nor task-local state: workers may
//                      address the same output element, violating the fixed
//                      tile-ownership split that makes multi-threaded
//                      kernels bit-identical to serial (DESIGN.md §7.6).
//   resident-history   (src/fl only) a member/variable declaration of a
//                      container holding std::vector<int64_t> payloads
//                      (map-of-index-lists, vector-of-index-lists): history
//                      records that grow one resident list per (iteration,
//                      client) defeat the state layer's bounded-RSS contract
//                      (DESIGN.md §7.8) — per-record history belongs in
//                      state::HistoryLog, which compresses, tiers, and
//                      spills it. The store's O(1)-triage inverted indices
//                      are the sanctioned exception, via suppression.

#ifndef FATS_TOOLS_ANALYZE_RULES_H_
#define FATS_TOOLS_ANALYZE_RULES_H_

#include <set>
#include <string>
#include <vector>

#include "analyze/code_model.h"
#include "analyze/include_graph.h"
#include "fats_lint_lib.h"

namespace fats::analyze {

inline constexpr const char kRuleRngRawKey[] = "rng-raw-key";
inline constexpr const char kRuleRngSharedStream[] = "rng-shared-stream";
inline constexpr const char kRuleRngUnorderedDraw[] = "rng-unordered-draw";
inline constexpr const char kRuleNondetReduction[] = "nondet-reduction";
inline constexpr const char kRuleFailpointGap[] = "failpoint-gap";
inline constexpr const char kRuleDiscardedStatus[] = "discarded-status";
inline constexpr const char kRuleLayerOrder[] = "layer-order";
inline constexpr const char kRuleLayerCycle[] = "layer-cycle";
inline constexpr const char kRuleStoreMutationBypass[] =
    "store-mutation-bypass";
inline constexpr const char kRuleRawWire[] = "raw-wire";
inline constexpr const char kRuleTileOverlap[] = "tile-overlap";
inline constexpr const char kRuleResidentHistory[] = "resident-history";

// The analyzer-pass rule IDs (the full ID space is these plus
// lint::AllRules()).
std::vector<std::string> AnalyzerRules();

// Cross-file state shared by the rule passes, built in one pass over every
// file before any rule runs.
struct AnalysisIndex {
  // Unqualified names of functions declared to return Status or Result<T>
  // by value, anywhere in the tree.
  std::set<std::string> status_functions;
  // Names also declared with some other return type somewhere (`void
  // Append(` vs `Status Append(`).  Without type resolution a call through
  // such a name is ambiguous, so discarded-status skips it rather than
  // misfire on the void overload.
  std::set<std::string> nonstatus_functions;
  // Failpoint site names registered via FATS_FAILPOINT("..."),
  // FATS_FAILPOINT_STATUS("..."), or failpoint::RegisterSite("...").
  std::set<std::string> failpoint_sites;
  IncludeGraph includes;
};

// Index-building pass.
void IndexFile(const FileModel& model, AnalysisIndex* index);

// Per-file rule passes.  Each appends findings (already marked suppressed
// where a directive covers them).
void CheckRngDiscipline(const FileModel& model,
                        std::vector<lint::Finding>* findings);
void CheckReductions(const FileModel& model,
                     std::vector<lint::Finding>* findings);
void CheckFailpointCoverage(const FileModel& model,
                            std::vector<lint::Finding>* findings);
void CheckStatusDiscipline(const FileModel& model, const AnalysisIndex& index,
                           std::vector<lint::Finding>* findings);
void CheckStoreMutation(const FileModel& model,
                        std::vector<lint::Finding>* findings);
void CheckWireDiscipline(const FileModel& model,
                         std::vector<lint::Finding>* findings);
void CheckTileOwnership(const FileModel& model,
                        std::vector<lint::Finding>* findings);
void CheckHistoryResidency(const FileModel& model,
                           std::vector<lint::Finding>* findings);

// Whole-tree pass over the include graph.
void CheckLayering(const AnalysisIndex& index,
                   const std::vector<FileModel>& models,
                   std::vector<lint::Finding>* findings);

}  // namespace fats::analyze

#endif  // FATS_TOOLS_ANALYZE_RULES_H_
