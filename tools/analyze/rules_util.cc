#include "analyze/rules_util.h"

#include <algorithm>

namespace fats::analyze {
namespace {

// Token index just past the end of the statement starting at `pos`
// (handles nested parens/braces), or tokens.size().
size_t StatementEndTok(const std::vector<Token>& tokens, size_t pos) {
  size_t i = pos;
  while (i < tokens.size()) {
    if (IsPunct(tokens, i, "(") || IsPunct(tokens, i, "{") ||
        IsPunct(tokens, i, "[")) {
      const size_t past = MatchForward(tokens, i);
      if (past == kNoMatch) return tokens.size();
      i = past;
    } else if (IsPunct(tokens, i, ";")) {
      return i + 1;
    } else {
      ++i;
    }
  }
  return tokens.size();
}

}  // namespace

std::vector<UnorderedLoop> FindUnorderedLoops(
    const std::vector<Token>& tokens,
    const std::vector<std::string>& unordered_names) {
  std::vector<UnorderedLoop> loops;
  if (unordered_names.empty()) return loops;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!IsIdent(tokens, i, "for") || !IsPunct(tokens, i + 1, "(")) continue;
    const size_t header_open = i + 1;
    const size_t header_close = MatchForward(tokens, header_open);
    if (header_close == kNoMatch) continue;

    bool over_unordered = false;
    int depth = 0;
    for (size_t j = header_open + 1; j + 1 < header_close; ++j) {
      if (tokens[j].kind == TokKind::kPunct && tokens[j].text.size() == 1) {
        const char c = tokens[j].text[0];
        if (c == '(' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == ']' || c == '}') --depth;
      }
      // Range-for: `for (decl : container)` with ':' at top level.  The
      // container's base identifier must be an unordered name.
      if (depth == 0 && IsPunct(tokens, j, ":")) {
        for (size_t k = j + 1; k < header_close - 1; ++k) {
          if (tokens[k].kind == TokKind::kIdent &&
              std::find(unordered_names.begin(), unordered_names.end(),
                        std::string(tokens[k].text)) !=
                  unordered_names.end()) {
            over_unordered = true;
          }
          break;  // only the first token of the container expression
        }
      }
      // Iterator loop: `name.begin()` / `name.cbegin()` in the header.
      if (tokens[j].kind == TokKind::kIdent &&
          (tokens[j].text == "begin" || tokens[j].text == "cbegin" ||
           tokens[j].text == "rbegin" || tokens[j].text == "crbegin") &&
          j >= 2 && IsPunct(tokens, j - 1, ".") &&
          tokens[j - 2].kind == TokKind::kIdent &&
          std::find(unordered_names.begin(), unordered_names.end(),
                    std::string(tokens[j - 2].text)) !=
              unordered_names.end()) {
        over_unordered = true;
      }
    }
    if (!over_unordered) continue;

    UnorderedLoop loop;
    loop.line = tokens[i].line;
    if (IsPunct(tokens, header_close, "{")) {
      const size_t body_close = MatchForward(tokens, header_close);
      if (body_close == kNoMatch) continue;
      loop.body_begin = header_close + 1;
      loop.body_end = body_close - 1;
    } else {
      loop.body_begin = header_close;
      loop.body_end = StatementEndTok(tokens, header_close);
      if (loop.body_end == tokens.size()) continue;
    }
    loops.push_back(loop);
  }
  return loops;
}

bool FloatTypedInFile(const std::vector<Token>& tokens,
                      std::string_view var_name) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent || tokens[i].text != var_name) {
      continue;
    }
    // Look back a short window for a float/double/Tensor type token with no
    // statement boundary in between: catches `float x`, `double& x`,
    // `std::vector<float> x`, `Tensor x`, `const float* x`.
    const size_t window_begin = i >= 8 ? i - 8 : 0;
    for (size_t j = i; j-- > window_begin;) {
      if (tokens[j].kind == TokKind::kPunct &&
          (tokens[j].text == ";" || tokens[j].text == "{" ||
           tokens[j].text == "}" || tokens[j].text == ")")) {
        break;
      }
      if (tokens[j].kind == TokKind::kIdent &&
          (tokens[j].text == "float" || tokens[j].text == "double" ||
           tokens[j].text == "Tensor")) {
        return true;
      }
    }
  }
  return false;
}

std::vector<std::pair<size_t, size_t>> ParallelForArgRanges(
    const std::vector<Token>& tokens) {
  std::vector<std::pair<size_t, size_t>> ranges;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!IsIdent(tokens, i, "ParallelFor") || !IsPunct(tokens, i + 1, "(")) {
      continue;
    }
    const size_t close = MatchForward(tokens, i + 1);
    if (close == kNoMatch) continue;
    ranges.emplace_back(i + 2, close - 1);
  }
  return ranges;
}

}  // namespace fats::analyze
