// Include-graph builder and layering checker for fats_analyze.
//
// The repository's module DAG (DESIGN.md §7.4) is, bottom-up:
//
//   rank 0  util                      (includable by every module)
//   rank 1  tensor, rng
//   rank 2  state                     (tensor + util: history codecs,
//                                      segment spill, tree aggregation)
//   rank 3  nn, transport             (tensor + rng)
//   rank 4  data                      (nn + below)
//   rank 5  fl                        (data + state + below)
//   rank 6  core, metrics             (fl + below)
//   rank 7  io, baselines, attack     (core + below)
//
// A file in module A may include module B only when rank(B) <= rank(A).
// Same-rank cross-includes are tolerated (core does not include metrics
// today, and transport does not include nn — frames carry opaque payload
// bytes, not models — but nothing structural forbids it) — the cycle check
// catches any mutual dependence that would arise.  Modules the rank table
// does not know are exempt from the rank check but still participate in
// cycle detection, so new layers cannot silently create cycles before they
// are assigned a rank.
//
// tools/, bench/, tests/, and examples/ may include anything.

#ifndef FATS_TOOLS_ANALYZE_INCLUDE_GRAPH_H_
#define FATS_TOOLS_ANALYZE_INCLUDE_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace fats::analyze {

struct IncludeEdge {
  std::string from_file;  // path as given to AddFile
  std::string target;     // the quoted include text, e.g. "core/fats_trainer.h"
  int line = 0;
};

// Returns the src/ module of a repo-relative or absolute path
// ("src/core/x.cc" -> "core"), or "" for paths outside src/.
std::string ModuleOf(std::string_view path);

// Rank of a module in the layer DAG, or -1 when unknown.
int ModuleRank(std::string_view module);

class IncludeGraph {
 public:
  // Parses the `#include "..."` directives of one file (from its raw,
  // unstripped content so include lines inside #if blocks still count) and
  // records the module-level edges.
  void AddFile(std::string_view path, std::string_view content);

  const std::vector<IncludeEdge>& edges() const { return edges_; }

  // Edges whose source module has a rank and whose target module's rank is
  // strictly higher (an include of an upper layer).
  std::vector<IncludeEdge> RankViolations() const;

  // Module cycles among src/ modules, each reported once as the edge list
  // of the cycle (file/line of one representative include per hop).
  std::vector<std::vector<IncludeEdge>> Cycles() const;

 private:
  std::vector<IncludeEdge> edges_;
  // module -> module -> one representative edge (first seen).
  std::map<std::string, std::map<std::string, IncludeEdge>> module_edges_;
};

}  // namespace fats::analyze

#endif  // FATS_TOOLS_ANALYZE_INCLUDE_GRAPH_H_
