#include "analyze/include_graph.h"

#include <algorithm>
#include <functional>
#include <regex>

namespace fats::analyze {
namespace {

const std::map<std::string, int>& RankTable() {
  static const auto* kRanks = new std::map<std::string, int>{
      {"util", 0},      {"tensor", 1}, {"rng", 1},   {"state", 2},
      {"transport", 3}, {"nn", 3},     {"data", 4},  {"fl", 5},
      {"core", 6},      {"metrics", 6}, {"io", 7},   {"baselines", 7},
      {"attack", 7},
  };
  return *kRanks;
}

}  // namespace

std::string ModuleOf(std::string_view path) {
  std::string norm(path);
  std::replace(norm.begin(), norm.end(), '\\', '/');
  size_t src = norm.rfind("src/");
  if (src == std::string::npos) return "";
  // Accept only a path-component "src" ("xsrc/" must not match).
  if (src != 0 && norm[src - 1] != '/') return "";
  const size_t mod_begin = src + 4;
  const size_t mod_end = norm.find('/', mod_begin);
  if (mod_end == std::string::npos) return "";
  return norm.substr(mod_begin, mod_end - mod_begin);
}

int ModuleRank(std::string_view module) {
  const auto& ranks = RankTable();
  auto it = ranks.find(std::string(module));
  return it == ranks.end() ? -1 : it->second;
}

void IncludeGraph::AddFile(std::string_view path, std::string_view content) {
  static const std::regex kInclude(R"(^[ \t]*#[ \t]*include[ \t]*"([^"]+)\")");
  const std::string from_module = ModuleOf(path);
  int line = 1;
  size_t start = 0;
  const std::string text(content);
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    const std::string line_text =
        text.substr(start, nl == std::string::npos ? std::string::npos
                                                   : nl - start);
    std::smatch m;
    if (std::regex_search(line_text, m, kInclude)) {
      IncludeEdge edge;
      edge.from_file = std::string(path);
      edge.target = m[1].str();
      edge.line = line;
      edges_.push_back(edge);
      if (!from_module.empty()) {
        // Project includes are written repo-relative to src/ ("core/x.h").
        const std::string to_module = ModuleOf("src/" + edge.target);
        if (!to_module.empty() && to_module != from_module) {
          module_edges_[from_module].emplace(to_module, edge);
        }
      }
    }
    if (nl == std::string::npos) break;
    start = nl + 1;
    ++line;
  }
}

std::vector<IncludeEdge> IncludeGraph::RankViolations() const {
  std::vector<IncludeEdge> violations;
  for (const auto& [from, targets] : module_edges_) {
    const int from_rank = ModuleRank(from);
    if (from_rank < 0) continue;
    for (const auto& [to, edge] : targets) {
      const int to_rank = ModuleRank(to);
      if (to_rank < 0) continue;
      if (to_rank > from_rank) violations.push_back(edge);
    }
  }
  return violations;
}

std::vector<std::vector<IncludeEdge>> IncludeGraph::Cycles() const {
  // Iterative DFS with colors over the module graph; each back edge yields
  // one cycle (the current stack slice).  Modules are visited in sorted
  // order, so reports are deterministic.
  std::vector<std::vector<IncludeEdge>> cycles;
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;

  // Recursive lambda via explicit stack of (module, next-target iterator).
  std::function<void(const std::string&)> visit = [&](const std::string& mod) {
    color[mod] = 1;
    stack.push_back(mod);
    auto it = module_edges_.find(mod);
    if (it != module_edges_.end()) {
      for (const auto& [to, edge] : it->second) {
        if (color[to] == 1) {
          // Back edge: the cycle is the stack from `to` to `mod` plus this
          // edge.  Collect the representative include for each hop.
          std::vector<IncludeEdge> cycle;
          auto begin = std::find(stack.begin(), stack.end(), to);
          for (auto s = begin; s != stack.end(); ++s) {
            auto next = (s + 1 != stack.end()) ? *(s + 1) : to;
            auto hop_from = module_edges_.find(*s);
            if (hop_from != module_edges_.end()) {
              auto hop = hop_from->second.find(next);
              if (hop != hop_from->second.end()) cycle.push_back(hop->second);
            }
          }
          if (!cycle.empty()) cycles.push_back(std::move(cycle));
        } else if (color[to] == 0) {
          visit(to);
        }
      }
    }
    stack.pop_back();
    color[mod] = 2;
  };

  for (const auto& [mod, targets] : module_edges_) {
    (void)targets;
    if (color[mod] == 0) visit(mod);
  }
  return cycles;
}

}  // namespace fats::analyze
