// Failpoint coverage (rule family 3): failpoint-gap.  Cross-references the
// durable-write primitives used in src/io against failpoint sites: every
// function that can make bytes durable (or destroy them) must carry a
// FATS_FAILPOINT / FATS_FAILPOINT_STATUS / failpoint::Evaluate site in its
// body, or the crash matrix (tests/crash_matrix_test.cc) cannot kill the
// process inside it and its recovery path ships untested.

#include <algorithm>
#include <regex>
#include <set>

#include "analyze/rules.h"
#include "analyze/rules_util.h"

namespace fats::analyze {
namespace {

const std::set<std::string_view>& DurablePrimitives() {
  static const auto* kSet = new std::set<std::string_view>{
      "fsync", "fdatasync", "rename", "truncate", "ftruncate", "fwrite"};
  return *kSet;
}

const std::set<std::string_view>& CoveringIdents() {
  static const auto* kSet = new std::set<std::string_view>{
      "FATS_FAILPOINT", "FATS_FAILPOINT_STATUS", "Evaluate"};
  return *kSet;
}

std::vector<std::string_view> SplitLinesView(std::string_view content) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= content.size()) {
    const size_t nl = content.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(content.substr(start));
      break;
    }
    lines.push_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

// fopen counts as a durable primitive only in a write/append mode.  The
// mode string is blanked in the stripped text, so consult the raw source:
// a `"w` / `"a` quote on the call line or the next one (the mode argument
// may wrap).
bool FopenIsWrite(const std::vector<std::string_view>& raw_lines, int line) {
  static const std::regex kWriteMode(R"("\s*[wa])");
  for (int l : {line, line + 1}) {
    if (l < 1 || static_cast<size_t>(l) > raw_lines.size()) continue;
    const std::string text(raw_lines[static_cast<size_t>(l) - 1]);
    if (std::regex_search(text, kWriteMode)) return true;
  }
  return false;
}

bool PathInSrcIo(std::string_view path) {
  std::string norm(path);
  std::replace(norm.begin(), norm.end(), '\\', '/');
  return norm.find("src/io/") != std::string::npos ||
         norm.rfind("io/", 0) == 0;
}

}  // namespace

void CheckFailpointCoverage(const FileModel& model,
                            std::vector<lint::Finding>* findings) {
  if (!PathInSrcIo(model.source->path)) return;
  const std::vector<Token>& tokens = model.tokens;
  const std::vector<std::string_view> raw_lines =
      SplitLinesView(model.source->content);

  for (const FunctionDef& fn : model.functions) {
    std::vector<std::string> primitives;
    int first_line = 0;
    bool covered = false;
    for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
      if (tokens[i].kind != TokKind::kIdent) continue;
      if (CoveringIdents().count(tokens[i].text) > 0) {
        covered = true;
        continue;
      }
      if (!IsPunct(tokens, i + 1, "(")) continue;
      const std::string_view name = tokens[i].text;
      bool durable = DurablePrimitives().count(name) > 0;
      if (!durable && name == "fopen") {
        durable = FopenIsWrite(raw_lines, tokens[i].line);
      }
      if (!durable) continue;
      if (std::find(primitives.begin(), primitives.end(),
                    std::string(name)) == primitives.end()) {
        primitives.emplace_back(name);
      }
      if (first_line == 0) first_line = tokens[i].line;
    }
    if (primitives.empty() || covered) continue;
    std::string list;
    for (const std::string& p : primitives) {
      if (!list.empty()) list += ", ";
      list += p;
    }
    AddFinding(
        model, kRuleFailpointGap, first_line,
        "'" + fn.qualified + "' calls durable-write primitive(s) [" + list +
            "] with no failpoint site in its body: the crash matrix cannot "
            "kill inside this path, so its recovery behavior is unproven; "
            "add FATS_FAILPOINT(_STATUS) next to the durable effect",
        findings);
  }
}

}  // namespace fats::analyze
