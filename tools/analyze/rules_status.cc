// Status discipline (rule family 4): discarded-status.  A Status or
// Result<T> return that is dropped on the floor silently converts an I/O
// failure into corrupted-but-"successful" state, which is exactly the bug
// class the durability contract exists to kill.  Two shapes fire:
//
//   Append(rec);            // bare-statement call to a Status-returning fn
//   (void)writer.Close();   // explicit discard without an allow() comment
//
// The explicit `(void)` cast is allowed — but only when annotated with
// `// fats-lint: allow(discarded-status)`, so every intentional discard is
// greppable and carries a reviewer-visible justification.

#include "analyze/rules.h"
#include "analyze/rules_util.h"

namespace fats::analyze {
namespace {

// Walks the call chain `a.b->c::Fn` backwards from the name token at `i`.
// Returns the index of the chain's first token.
size_t ChainStart(const std::vector<Token>& tokens, size_t i) {
  size_t start = i;
  while (start >= 2 &&
         (IsPunct(tokens, start - 1, ".") || IsPunct(tokens, start - 1, "->") ||
          IsPunct(tokens, start - 1, "::")) &&
         tokens[start - 2].kind == TokKind::kIdent) {
    start -= 2;
  }
  return start;
}

// True when the token just before `chain_start` marks a statement boundary,
// i.e. the call chain IS the statement (its value has nowhere to go).
bool AtStatementStart(const std::vector<Token>& tokens, size_t chain_start) {
  if (chain_start == 0) return true;
  const Token& prev = tokens[chain_start - 1];
  if (prev.kind == TokKind::kPunct) {
    // `:` is deliberately absent: it would catch `case x: Fn();` but also
    // misfire on the false branch of ternaries (`cond ? a : Fn(...)`).
    return prev.text == ";" || prev.text == "{" || prev.text == "}";
  }
  return prev.kind == TokKind::kIdent &&
         (prev.text == "else" || prev.text == "do");
}

// True when the call chain is prefixed by a `(void)` cast:
// tokens ... `(` `void` `)` chain.
bool VoidCastBefore(const std::vector<Token>& tokens, size_t chain_start) {
  return chain_start >= 3 && IsPunct(tokens, chain_start - 1, ")") &&
         IsIdent(tokens, chain_start - 2, "void") &&
         IsPunct(tokens, chain_start - 3, "(");
}

}  // namespace

void CheckStatusDiscipline(const FileModel& model, const AnalysisIndex& index,
                           std::vector<lint::Finding>* findings) {
  const std::vector<Token>& tokens = model.tokens;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent || !IsPunct(tokens, i + 1, "(")) {
      continue;
    }
    const std::string name(tokens[i].text);
    if (index.status_functions.count(name) == 0 ||
        index.nonstatus_functions.count(name) > 0) {
      continue;
    }
    const size_t close = MatchForward(tokens, i + 1);
    if (close == kNoMatch) continue;
    // The value must go nowhere: the statement ends right after the call.
    // `Fn(...).ok()`, `x = Fn(...)`, `return Fn(...)` all use the result.
    if (!IsPunct(tokens, close, ";")) continue;
    const size_t chain_start = ChainStart(tokens, i);
    if (AtStatementStart(tokens, chain_start)) {
      AddFinding(model, kRuleDiscardedStatus, tokens[i].line,
                 "return value of Status/Result-returning '" +
                     std::string(tokens[i].text) +
                     "' is discarded: a failed write would be silently "
                     "ignored; check it (FATS_RETURN_NOT_OK) or discard "
                     "explicitly with (void) plus "
                     "`// fats-lint: allow(discarded-status)`",
                 findings);
      continue;
    }
    if (VoidCastBefore(tokens, chain_start)) {
      // Explicit discard: fine only when annotated.  AddFinding marks the
      // finding suppressed when the allow() directive is present, so an
      // annotated cast reports suppressed=true and does not fail the run.
      AddFinding(model, kRuleDiscardedStatus, tokens[i].line,
                 "(void)-discard of Status/Result-returning '" +
                     std::string(tokens[i].text) +
                     "' lacks a `// fats-lint: allow(discarded-status)` "
                     "annotation: intentional discards must be marked so "
                     "they are greppable and reviewed",
                 findings);
    }
  }
}

}  // namespace fats::analyze
