// Per-file code model for fats_analyze: token stream, function definitions,
// lambda bodies, and call sites, recovered heuristically from the token
// stream (no full parse, no preprocessor).  The model is deliberately
// conservative: when a construct cannot be parsed, it is omitted rather than
// guessed, and the rules that consume it degrade to not firing.

#ifndef FATS_TOOLS_ANALYZE_CODE_MODEL_H_
#define FATS_TOOLS_ANALYZE_CODE_MODEL_H_

#include <string>
#include <string_view>
#include <vector>

#include "analyze/lexer.h"
#include "fats_lint_lib.h"

namespace fats::analyze {

// One file handed to the analyzer.  `content` is the raw source.
struct SourceFile {
  std::string path;
  std::string content;
};

// A function (or method / constructor) definition: the tokens of its body,
// [body_begin, body_end) as token indices, body_begin pointing just past the
// opening '{' and body_end at the matching '}'.
struct FunctionDef {
  std::string name;       // unqualified name, e.g. "Append"
  std::string qualified;  // e.g. "JournalWriter::Append" when qualified
  size_t body_begin = 0;
  size_t body_end = 0;
  int line = 0;  // line of the name token
};

// A lambda body, [body_begin, body_end) as token indices (inside the
// braces).  `param_names` are the lambda's parameter identifiers in order.
struct LambdaBody {
  size_t body_begin = 0;
  size_t body_end = 0;
  std::vector<std::string> param_names;
  int line = 0;  // line of the '[' introducer
};

// A fully analyzed file: raw + stripped content, tokens, suppressions, and
// the recovered definitions.  Built once per file and shared by every pass.
struct FileModel {
  const SourceFile* source = nullptr;
  std::string stripped;
  std::vector<Token> tokens;
  lint::SuppressionMap suppressions;
  lint::FileClass file_class;
  std::vector<FunctionDef> functions;
  // Names declared with unordered container types, from this file plus (for
  // a .cc) its sibling header when the analyzer can resolve it.
  std::vector<std::string> unordered_names;
};

FileModel BuildFileModel(const SourceFile& source);

// Extracts function definitions from a token stream.  Exposed for tests.
std::vector<FunctionDef> ExtractFunctions(const std::vector<Token>& tokens);

// Finds lambda bodies in the token range [begin, end).  Exposed for tests.
std::vector<LambdaBody> FindLambdas(const std::vector<Token>& tokens,
                                    size_t begin, size_t end);

// True when an identifier token sequence `Type name` (declaration of `name`
// with type `type_name`) occurs in [begin, end).
bool DeclaresVariable(const std::vector<Token>& tokens, size_t begin,
                      size_t end, std::string_view type_name,
                      std::string_view var_name);

}  // namespace fats::analyze

#endif  // FATS_TOOLS_ANALYZE_CODE_MODEL_H_
