// History-residency discipline (rule family 9): resident-history.  The
// state layer (src/state, DESIGN.md §7.8) exists so that per-record FATS
// history — one index list per (iteration, client) — lives in compressed
// blocks that tier out to mmap-backed segment files instead of growing the
// resident set without bound.  A declaration in src/fl like
//
//   std::map<Key, std::vector<int64_t>> minibatches_;     // fires
//   std::vector<std::vector<int64_t>> per_round_lists_;   // fires
//
// reintroduces the flat O(T·K) resident layout the layer replaced: at
// M = 10^6 clients such a member is the difference between a bounded-RSS
// run and an OOM kill.  Per-record history belongs in a state::HistoryLog.
// The store's inverted participation indices (sample -> use-iterations,
// client -> rounds) are the sanctioned exception — they are the O(1)
// unlearning triage structure and carry explicit
// `// fats-lint: allow(resident-history)` suppressions.
//
// Matched shape: a member or local *declaration* (not a function return
// type, parameter, or alias target) whose type is a std:: container with a
// std::vector<int64_t> nested anywhere in its template arguments.  Scoped
// to src/fl; src/state itself owns these layouts and is exempt by scope.

#include "analyze/rules.h"
#include "analyze/rules_util.h"

namespace fats::analyze {
namespace {

const std::set<std::string_view>& ContainerHeads() {
  static const auto* kSet = new std::set<std::string_view>{
      "map", "unordered_map", "vector", "deque", "list", "multimap"};
  return *kSet;
}

bool InScope(const std::string& path) {
  return path.find("src/fl/") != std::string::npos;
}

// Walks the template argument list starting at the `<` token at `open`.
// Returns the index one past the matching `>` (accounting for fused `>>`),
// or 0 when unbalanced. Sets `*has_index_list` when a `vector<int64_t>`
// (with or without std::) occurs anywhere inside.
size_t WalkTemplateArgs(const std::vector<Token>& tokens, size_t open,
                        bool* has_index_list) {
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind == TokKind::kPunct) {
      if (tokens[i].text == "<") {
        ++depth;
      } else if (tokens[i].text == ">") {
        if (--depth == 0) return i + 1;
      } else if (tokens[i].text == ">>") {
        depth -= 2;
        if (depth <= 0) return i + 1;
      } else if (tokens[i].text == ";" || tokens[i].text == "{") {
        return 0;  // unbalanced: `a < b;` comparison, not a template
      }
    } else if (i > open && tokens[i].kind == TokKind::kIdent &&
               tokens[i].text == "vector" && IsPunct(tokens, i + 1, "<") &&
               IsIdent(tokens, i + 2, "int64_t")) {
      *has_index_list = true;
    }
  }
  return 0;
}

}  // namespace

void CheckHistoryResidency(const FileModel& model,
                           std::vector<lint::Finding>* findings) {
  if (!InScope(model.source->path)) return;
  const std::vector<Token>& tokens = model.tokens;
  for (size_t i = 0; i + 4 < tokens.size(); ++i) {
    // `std :: <container> <`
    if (!IsIdent(tokens, i, "std") || !IsPunct(tokens, i + 1, "::")) continue;
    if (tokens[i + 2].kind != TokKind::kIdent ||
        ContainerHeads().count(tokens[i + 2].text) == 0) {
      continue;
    }
    if (!IsPunct(tokens, i + 3, "<")) continue;
    bool has_index_list = false;
    const size_t after = WalkTemplateArgs(tokens, i + 3, &has_index_list);
    if (after == 0 || !has_index_list) continue;
    // Declaration discriminator: the closing `>` is followed by a bare
    // identifier and then `;`, `=`, `{`, or `(`-free end of declarator.
    // `> Name(` is a function returning the container; `> &name` / `>*` are
    // views over storage owned elsewhere; `>` followed by a further `>` or
    // `,` is a nested position already covered by the outer match.
    if (after >= tokens.size() || tokens[after].kind != TokKind::kIdent) {
      continue;
    }
    const Token& name = tokens[after];
    if (!(IsPunct(tokens, after + 1, ";") || IsPunct(tokens, after + 1, "=") ||
          IsPunct(tokens, after + 1, "{"))) {
      continue;
    }
    AddFinding(model, kRuleResidentHistory, name.line,
               "'" + std::string(name.text) +
                   "' keeps one resident index list per record; per-record "
                   "history in src/fl must live in a state::HistoryLog "
                   "(compressed blocks, segment spill — DESIGN.md §7.8) so "
                   "RSS stays bounded at M=10^6 clients. If this is an O(1) "
                   "triage index, suppress with "
                   "// fats-lint: allow(resident-history)",
               findings);
    i = after;
  }
}

}  // namespace fats::analyze
