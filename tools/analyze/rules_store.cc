// Store-mutation discipline (rule family 6): store-mutation-bypass.  The
// trainer's StateStore keeps inverted participation indices (sample ->
// use-iterations, client -> participation-rounds) maintained incrementally
// by its own Save*/Truncate methods, and the trainer wraps those in
// SubstituteMinibatch / RecordClientSelection / TruncateStoreFromIteration
// so the durable event sink sees every history rewrite.  Core code that
// grabs the store and mutates it directly —
//
//   trainer_->store().TruncateFromIteration(t, e);   // fires
//   store_.SaveMinibatch(t, k, batch);               // fires (outside the
//                                                    // trainer itself)
//
// — skips the sink, so a crash replays a journal that never saw the
// rewrite.  The rule confines direct mutation to the owning trainer
// (src/core/fats_trainer.*); everything else in src/core must go through
// the trainer's wrappers.  Reads (GetMinibatch, EarliestSampleUse, ...)
// are exempt.

#include "analyze/rules.h"
#include "analyze/rules_util.h"

namespace fats::analyze {
namespace {

// StateStore methods that mutate records (and therefore the inverted
// indices and the durable history).
const std::set<std::string_view>& StoreMutators() {
  static const auto* kSet = new std::set<std::string_view>{
      "SaveMinibatch",    "SaveClientSelection", "SaveLocalModel",
      "SaveGlobalModel",  "TruncateFromIteration", "Clear"};
  return *kSet;
}

// True when the mutator call at token `i` is invoked on the trainer's
// store: `store().Mutator(` or `store_.Mutator(`.
bool OnTrainerStore(const std::vector<Token>& tokens, size_t i) {
  if (i < 2 || !IsPunct(tokens, i - 1, ".")) return false;
  if (IsIdent(tokens, i - 2, "store_")) return true;
  return i >= 4 && IsPunct(tokens, i - 2, ")") && IsPunct(tokens, i - 3, "(") &&
         IsIdent(tokens, i - 4, "store");
}

bool InScope(const std::string& path) {
  if (path.find("src/core/") == std::string::npos) return false;
  // The trainer owns the store; its own wrappers are the sanctioned
  // mutation API.
  return path.find("fats_trainer") == std::string::npos;
}

}  // namespace

void CheckStoreMutation(const FileModel& model,
                        std::vector<lint::Finding>* findings) {
  if (!InScope(model.source->path)) return;
  const std::vector<Token>& tokens = model.tokens;
  for (size_t i = 2; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent || !IsPunct(tokens, i + 1, "(")) {
      continue;
    }
    if (StoreMutators().count(tokens[i].text) == 0) continue;
    if (!OnTrainerStore(tokens, i)) continue;
    AddFinding(model, kRuleStoreMutationBypass, tokens[i].line,
               "direct StateStore mutation '" + std::string(tokens[i].text) +
                   "' bypasses the trainer's event sink and the store's "
                   "incremental index maintenance contract; call the "
                   "trainer's wrapper (SubstituteMinibatch / "
                   "RecordClientSelection / TruncateStoreFromIteration) "
                   "instead",
               findings);
  }
}

}  // namespace fats::analyze
