// Wire discipline (rule family 7): raw-wire.  Every model broadcast and
// upload must travel through transport::ReliableChannel, whose retry /
// backoff / CRC-reject protocol is what makes lossy runs bit-identical to
// clean ones (DESIGN.md §7.7).  Core code that frames bytes or touches the
// ring buffer directly —
//
//   std::string frame = transport::EncodeFrame(msg);   // fires
//   wire_->PushFrame(dir, frame);                      // fires
//   ::send(fd, buf, len, 0);                           // fires
//
// — bypasses the recovery protocol, so a dropped or corrupted frame
// silently diverges the trained model instead of being retransmitted.  The
// rule confines frame codecs, ring-buffer primitives, and POSIX socket
// calls to src/transport itself; src/core, src/fl, and src/io must go
// through the channel's delivery API (Deliver / DeliverModel /
// DeliverParticipation over an EncodedModel), which is exempt.

#include "analyze/rules.h"
#include "analyze/rules_util.h"

namespace fats::analyze {
namespace {

// Frame-codec and ring-buffer primitives of src/transport, plus the POSIX
// socket surface a future backend would wrap.  Any of these in call
// position outside src/transport is a bypass.
const std::set<std::string_view>& WirePrimitives() {
  static const auto* kSet = new std::set<std::string_view>{
      // wire_format.h codecs
      "EncodeFrame", "DecodeFrame", "EncodeModelPayload",
      "DecodeModelPayload", "EncodeParticipationPayload",
      "DecodeParticipationPayload", "EncodeCommChargePayload",
      "DecodeCommChargePayload",
      // transport.h ring-buffer primitives
      "PushFrame", "PopFrame", "PushFrameBlocking", "PopFrameBlocking",
      // POSIX socket calls
      "socket", "connect", "bind", "listen", "accept", "sendto", "recvfrom",
      "sendmsg", "recvmsg"};
  return *kSet;
}

// Words that can directly precede a call expression without making the
// `ident ident (` pair a declaration (`return socket(...)` is a call;
// `Status PushFrame(...)` is not).
const std::set<std::string_view>& CallKeywords() {
  static const auto* kSet = new std::set<std::string_view>{
      "return", "co_return", "co_await", "co_yield", "case", "else", "do"};
  return *kSet;
}

// The rule polices the layers that carry model state over the wire.  Other
// modules (tools, tests, benches) exercise the primitives on purpose.
bool InScope(const std::string& path) {
  if (path.find("src/transport/") != std::string::npos) return false;
  return path.find("src/core/") != std::string::npos ||
         path.find("src/fl/") != std::string::npos ||
         path.find("src/io/") != std::string::npos;
}

}  // namespace

void CheckWireDiscipline(const FileModel& model,
                         std::vector<lint::Finding>* findings) {
  if (!InScope(model.source->path)) return;
  const std::vector<Token>& tokens = model.tokens;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent || !IsPunct(tokens, i + 1, "(")) {
      continue;
    }
    if (WirePrimitives().count(tokens[i].text) == 0) continue;
    // `ident ident (` is a declaration (`Status PushFrame(...)`), not a
    // call; member declarations in mocks/fakes are fine.  Keywords that
    // legally precede a call (`return socket(...)`) are not types.
    if (i >= 1 && tokens[i - 1].kind == TokKind::kIdent &&
        CallKeywords().count(tokens[i - 1].text) == 0) {
      continue;
    }
    // `> ident (` closes a template return type — also a declaration.
    if (i >= 1 && IsPunct(tokens, i - 1, ">")) continue;
    AddFinding(model, kRuleRawWire, tokens[i].line,
               "raw wire primitive '" + std::string(tokens[i].text) +
                   "' outside src/transport bypasses the reliable-channel "
                   "recovery protocol (retry/backoff/CRC-reject); route "
                   "model traffic through transport::ReliableChannel "
                   "(DeliverModel over an EncodedModel) instead",
               findings);
  }
}

}  // namespace fats::analyze
