// Deterministic reductions (rule family 2): nondet-reduction.  Flags
// float/double accumulation whose order depends on the worker schedule (a
// ParallelFor task body writing shared, non-slot-indexed state) or on hash
// iteration order (a loop over an unordered container).  This is the bug
// class that breaks serial/parallel bit-identity: float addition is not
// associative, so any reduction whose operand order can vary between runs
// produces models that differ in the low mantissa bits — enough to void the
// exactness proof.

#include <algorithm>

#include "analyze/rules.h"
#include "analyze/rules_util.h"

namespace fats::analyze {
namespace {

// For an accumulation operator at token index `op`, identifies the base
// identifier of the left-hand side and whether the LHS is subscripted.
// Returns false when the shape is unrecognized.
struct AccumTarget {
  std::string base;
  bool subscripted = false;
  size_t subscript_begin = 0;  // token range of the subscript expression
  size_t subscript_end = 0;
};

bool ResolveAccumTarget(const std::vector<Token>& tokens, size_t op,
                        AccumTarget* out) {
  if (op == 0) return false;
  size_t i = op - 1;
  if (IsPunct(tokens, i, "]")) {
    // Walk back to the matching '['.
    int depth = 0;
    size_t j = i + 1;
    while (j-- > 0) {
      if (IsPunct(tokens, j, "]")) ++depth;
      if (IsPunct(tokens, j, "[")) {
        if (--depth == 0) break;
      }
      if (j == 0) return false;
    }
    if (j == 0 || tokens[j - 1].kind != TokKind::kIdent) return false;
    out->base = std::string(tokens[j - 1].text);
    out->subscripted = true;
    out->subscript_begin = j + 1;
    out->subscript_end = i;
    return true;
  }
  if (tokens[i].kind == TokKind::kIdent) {
    // `x +=` or `s.field +=` / `s->field +=`: attribute to the chain base.
    size_t base = i;
    while (base >= 2 &&
           (IsPunct(tokens, base - 1, ".") ||
            IsPunct(tokens, base - 1, "->")) &&
           tokens[base - 2].kind == TokKind::kIdent) {
      base -= 2;
    }
    out->base = std::string(tokens[base].text);
    out->subscripted = false;
    return true;
  }
  return false;
}

bool RangeMentionsAny(const std::vector<Token>& tokens, size_t begin,
                      size_t end, const std::vector<std::string>& names) {
  for (size_t i = begin; i < end; ++i) {
    if (tokens[i].kind == TokKind::kIdent &&
        std::find(names.begin(), names.end(), std::string(tokens[i].text)) !=
            names.end()) {
      return true;
    }
  }
  return false;
}

bool DeclaredInRange(const std::vector<Token>& tokens, size_t begin,
                     size_t end, const std::string& name) {
  // Any `Type name` pair with `name` second suffices: we only need to know
  // the accumulator is task-local, whatever its type.
  for (size_t i = begin; i + 1 < end && i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent) continue;
    size_t j = i + 1;
    while (IsPunct(tokens, j, "&") || IsPunct(tokens, j, "*")) ++j;
    if (IsIdent(tokens, j, name) &&
        (IsPunct(tokens, j + 1, "=") || IsPunct(tokens, j + 1, ";") ||
         IsPunct(tokens, j + 1, "{") || IsPunct(tokens, j + 1, "("))) {
      return true;
    }
  }
  return false;
}

void CheckRange(const FileModel& model, size_t begin, size_t end,
                const std::vector<std::string>& slot_params,
                const char* where, std::vector<lint::Finding>* findings) {
  const std::vector<Token>& tokens = model.tokens;
  for (size_t i = begin; i < end; ++i) {
    if (tokens[i].kind != TokKind::kPunct ||
        (tokens[i].text != "+=" && tokens[i].text != "-=")) {
      continue;
    }
    AccumTarget target;
    if (!ResolveAccumTarget(tokens, i, &target)) continue;
    // Slot-indexed writes (`out[index] += ...` with `index` a task
    // parameter) are the sanctioned pattern: each task owns its slot.
    if (target.subscripted && !slot_params.empty() &&
        RangeMentionsAny(tokens, target.subscript_begin, target.subscript_end,
                         slot_params)) {
      continue;
    }
    // Task-local accumulators are deterministic per task.
    if (DeclaredInRange(tokens, begin, end, target.base)) continue;
    // Only floating accumulation breaks bit-identity under reordering;
    // integer counters are associative (and races are tsan's department).
    if (!FloatTypedInFile(tokens, target.base)) continue;
    AddFinding(
        model, kRuleNondetReduction, tokens[i].line,
        "float accumulation onto '" + target.base + "' " + where +
            ": the reduction order can differ between runs, so the sum "
            "differs in the low mantissa bits and serial/parallel replay "
            "bit-identity breaks; accumulate into slot-indexed storage and "
            "reduce in a fixed order",
        findings);
  }
}

}  // namespace

void CheckReductions(const FileModel& model,
                     std::vector<lint::Finding>* findings) {
  const std::vector<Token>& tokens = model.tokens;
  for (const auto& [args_begin, args_end] : ParallelForArgRanges(tokens)) {
    for (const LambdaBody& lambda :
         FindLambdas(tokens, args_begin, args_end)) {
      CheckRange(model, lambda.body_begin, lambda.body_end,
                 lambda.param_names, "inside a ParallelFor task body",
                 findings);
    }
  }
  for (const UnorderedLoop& loop :
       FindUnorderedLoops(tokens, model.unordered_names)) {
    CheckRange(model, loop.body_begin, loop.body_end, {},
               "inside iteration over an unordered container", findings);
  }
}

}  // namespace fats::analyze
