#include "analyze/code_model.h"

#include <set>

namespace fats::analyze {
namespace {

// Keywords that look like `ident (` but never start a function definition.
const std::set<std::string_view>& ControlKeywords() {
  static const auto* kSet = new std::set<std::string_view>{
      "if", "for", "while", "switch", "catch", "return", "sizeof",
      "alignof", "decltype", "static_assert", "new", "delete", "throw"};
  return *kSet;
}

// Qualifier-ish identifiers allowed between a parameter list's ')' and the
// body '{' of a function definition.
bool IsTrailingQualifier(std::string_view text) {
  return text == "const" || text == "noexcept" || text == "override" ||
         text == "final" || text == "mutable" || text == "try";
}

// Skips a constructor member-init list starting at the ':' token.  Returns
// the index of the body '{', or tokens.size() when the shape is not an init
// list (e.g. `case x:` labels).
size_t SkipInitList(const std::vector<Token>& tokens, size_t colon) {
  size_t i = colon + 1;
  while (i < tokens.size()) {
    if (tokens[i].kind != TokKind::kIdent) return tokens.size();
    ++i;
    // Allow qualified member names (rare) and template args.
    while (IsPunct(tokens, i, "::") && i + 1 < tokens.size() &&
           tokens[i + 1].kind == TokKind::kIdent) {
      i += 2;
    }
    if (IsPunct(tokens, i, "<")) {
      const size_t past = MatchForward(tokens, i);
      if (past == kNoMatch) return tokens.size();
      i = past;
    }
    if (!IsPunct(tokens, i, "(") && !IsPunct(tokens, i, "{")) {
      return tokens.size();
    }
    const size_t past = MatchForward(tokens, i);
    if (past == kNoMatch) return tokens.size();
    i = past;
    if (IsPunct(tokens, i, ",")) {
      ++i;
      continue;
    }
    if (IsPunct(tokens, i, "{")) return i;
    return tokens.size();
  }
  return tokens.size();
}

}  // namespace

std::vector<FunctionDef> ExtractFunctions(const std::vector<Token>& tokens) {
  std::vector<FunctionDef> defs;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent || !IsPunct(tokens, i + 1, "(")) {
      continue;
    }
    if (ControlKeywords().count(tokens[i].text) > 0) continue;
    // The callee chain must sit at declaration position, not be a call:
    // a call is preceded by `.`, `->`, `(`, `,`, an operator, `return`, ...
    // A definition's name is preceded by a type token, `::`, `&`, `*`, or
    // starts the file.  Rather than enumerate types, require that walking
    // back over `ident ::` qualifiers lands on something that is NOT one of
    // the call-context punctuators.
    size_t name_idx = i;
    std::string qualified(tokens[i].text);
    size_t back = i;
    while (back >= 2 && IsPunct(tokens, back - 1, "::") &&
           tokens[back - 2].kind == TokKind::kIdent) {
      qualified = std::string(tokens[back - 2].text) + "::" + qualified;
      back -= 2;
    }
    if (back > 0) {
      const Token& prev = tokens[back - 1];
      const bool call_context =
          prev.kind == TokKind::kPunct &&
          (prev.text == "." || prev.text == "->" || prev.text == "(" ||
           prev.text == "," || prev.text == "=" || prev.text == "+" ||
           prev.text == "-" || prev.text == "!" || prev.text == "<" ||
           prev.text == "?" || prev.text == ":" || prev.text == "::" ||
           prev.text == "+=" || prev.text == "-=" || prev.text == "==" ||
           prev.text == "!=" || prev.text == "&&" || prev.text == "||" ||
           // `>>` is NOT call context: `Result<unique_ptr<T>> Fn(` lexes
           // the closing angles as one `>>` token, and the body-brace
           // requirement below already rejects stream-extraction chains.
           prev.text == "<<");
      const bool keyword_context = prev.kind == TokKind::kIdent &&
                                   (prev.text == "return" ||
                                    prev.text == "co_return" ||
                                    prev.text == "case" || prev.text == "new");
      if (call_context || keyword_context) continue;
    }
    const size_t close = MatchForward(tokens, i + 1);
    if (close == kNoMatch) continue;
    size_t j = close;
    // Trailing qualifiers, `-> Type` return specs, and `: init-list`.
    while (j < tokens.size()) {
      if (tokens[j].kind == TokKind::kIdent &&
          IsTrailingQualifier(tokens[j].text)) {
        ++j;
        continue;
      }
      if (IsPunct(tokens, j, "->")) {
        // Trailing return type: skip tokens up to '{', ';', or init ':'.
        ++j;
        while (j < tokens.size() && !IsPunct(tokens, j, "{") &&
               !IsPunct(tokens, j, ";") && !IsPunct(tokens, j, ":")) {
          if (IsPunct(tokens, j, "<")) {
            const size_t past = MatchForward(tokens, j);
            if (past == kNoMatch) break;
            j = past;
          } else {
            ++j;
          }
        }
        continue;
      }
      if (IsPunct(tokens, j, "noexcept") || IsPunct(tokens, j, "(")) {
        // noexcept(expr)
        const size_t past = MatchForward(tokens, j);
        if (past == kNoMatch) break;
        j = past;
        continue;
      }
      break;
    }
    size_t body_open = tokens.size();
    if (IsPunct(tokens, j, "{")) {
      body_open = j;
    } else if (IsPunct(tokens, j, ":")) {
      body_open = SkipInitList(tokens, j);
    }
    if (body_open >= tokens.size()) continue;
    const size_t body_close = MatchForward(tokens, body_open);
    if (body_close == kNoMatch) continue;
    FunctionDef def;
    def.name = std::string(tokens[name_idx].text);
    def.qualified = qualified;
    def.body_begin = body_open + 1;
    def.body_end = body_close - 1;
    def.line = tokens[name_idx].line;
    defs.push_back(std::move(def));
  }
  return defs;
}

std::vector<LambdaBody> FindLambdas(const std::vector<Token>& tokens,
                                    size_t begin, size_t end) {
  std::vector<LambdaBody> lambdas;
  for (size_t i = begin; i < end && i < tokens.size(); ++i) {
    if (!IsPunct(tokens, i, "[")) continue;
    // A lambda introducer is preceded by an expression-starting context;
    // a subscript is preceded by a value (ident, ')', ']', number).
    if (i > 0) {
      const Token& prev = tokens[i - 1];
      if (prev.kind == TokKind::kIdent && prev.text != "return" &&
          prev.text != "case") {
        continue;
      }
      if (prev.kind == TokKind::kNumber) continue;
      if (prev.kind == TokKind::kPunct &&
          (prev.text == ")" || prev.text == "]")) {
        continue;
      }
    }
    const size_t capture_close = MatchForward(tokens, i);
    if (capture_close == kNoMatch) continue;
    size_t j = capture_close;
    LambdaBody lambda;
    lambda.line = tokens[i].line;
    if (IsPunct(tokens, j, "(")) {
      const size_t params_close = MatchForward(tokens, j);
      if (params_close == kNoMatch) continue;
      // Parameter names: the identifier directly before each ',' or the
      // closing ')' (skipping defaulted params is not needed in this tree).
      for (size_t p = j + 1; p < params_close; ++p) {
        if ((IsPunct(tokens, p, ",") || p == params_close - 1) && p > j + 1 &&
            tokens[p - 1].kind == TokKind::kIdent) {
          lambda.param_names.emplace_back(tokens[p - 1].text);
        }
      }
      j = params_close;
    }
    // mutable / noexcept / -> Type
    while (j < tokens.size() && !IsPunct(tokens, j, "{") &&
           !IsPunct(tokens, j, ";") && !IsPunct(tokens, j, ")") &&
           !IsPunct(tokens, j, ",")) {
      ++j;
    }
    if (!IsPunct(tokens, j, "{")) continue;
    const size_t body_close = MatchForward(tokens, j);
    if (body_close == kNoMatch) continue;
    lambda.body_begin = j + 1;
    lambda.body_end = body_close - 1;
    lambdas.push_back(std::move(lambda));
    i = j;  // descend: nested lambdas are found by the continuing scan
  }
  return lambdas;
}

bool DeclaresVariable(const std::vector<Token>& tokens, size_t begin,
                      size_t end, std::string_view type_name,
                      std::string_view var_name) {
  for (size_t i = begin; i + 1 < end && i + 1 < tokens.size(); ++i) {
    if (!IsIdent(tokens, i, type_name)) continue;
    // Allow `Type name`, `Type& name`, `Type* name`.
    size_t j = i + 1;
    while (IsPunct(tokens, j, "&") || IsPunct(tokens, j, "*")) ++j;
    if (IsIdent(tokens, j, var_name)) return true;
  }
  return false;
}

FileModel BuildFileModel(const SourceFile& source) {
  FileModel model;
  model.source = &source;
  model.stripped = lint::StripCommentsAndStrings(source.content);
  model.tokens = Lex(model.stripped);
  model.suppressions = lint::SuppressionMap::Parse(source.content);
  model.file_class = lint::ClassifyPath(source.path);
  model.functions = ExtractFunctions(model.tokens);
  model.unordered_names = lint::CollectUnorderedNames(source.content);
  return model;
}

}  // namespace fats::analyze
