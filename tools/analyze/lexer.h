// Lightweight C++ lexer for the fats_analyze passes.
//
// The lexer runs over comment/string-stripped source (see
// fats::lint::StripCommentsAndStrings), so it never sees string or comment
// content; string literals lex as whitespace.  It produces just enough
// structure for the analyzer's pattern passes: identifiers, numbers, and
// punctuators (with the handful of multi-character operators the rules care
// about — `::`, `+=`, `->`, ... — fused into single tokens).  It is not a
// preprocessor and does not expand macros; macro names lex as identifiers,
// which is exactly what the failpoint-coverage pass wants.

#ifndef FATS_TOOLS_ANALYZE_LEXER_H_
#define FATS_TOOLS_ANALYZE_LEXER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace fats::analyze {

enum class TokKind {
  kIdent,   // identifiers and keywords (no keyword table; rules match text)
  kNumber,  // numeric literals including 0x / suffixes / digit separators
  kPunct,   // punctuation; multi-char operators fused (see lexer.cc)
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string_view text;  // view into the stripped source passed to Lex
  size_t offset = 0;      // byte offset into that source
  int line = 0;           // 1-based
};

// Lexes stripped source.  The returned tokens view into `stripped`, which
// must outlive them.
std::vector<Token> Lex(std::string_view stripped);

// Token-index helpers.  All return kNoMatch on failure rather than
// asserting, so passes degrade gracefully on code they cannot parse.

// Failure sentinel for MatchForward.  Distinct from tokens.size(): a
// successful match whose closer is the file's last token legitimately
// returns tokens.size(), so that value must not double as "unbalanced".
inline constexpr size_t kNoMatch = static_cast<size_t>(-1);

// Index just past the token matching the opener at `open` (tokens[open]
// must be "(", "[", "{", or "<").  Returns kNoMatch when unbalanced.
size_t MatchForward(const std::vector<Token>& tokens, size_t open);

// True if tokens[i] is an identifier with exactly this text.
bool IsIdent(const std::vector<Token>& tokens, size_t i, std::string_view text);

// True if tokens[i] is a punctuator with exactly this text.
bool IsPunct(const std::vector<Token>& tokens, size_t i, std::string_view text);

}  // namespace fats::analyze

#endif  // FATS_TOOLS_ANALYZE_LEXER_H_
