// Layering (rule family 5): layer-order and layer-cycle.  The module DAG is
// documented in include_graph.h; this pass turns the graph's violations into
// findings, attributing each to the offending #include line.

#include <map>

#include "analyze/rules.h"
#include "analyze/rules_util.h"

namespace fats::analyze {
namespace {

const FileModel* ModelForPath(const std::vector<FileModel>& models,
                              const std::string& path) {
  for (const FileModel& m : models) {
    if (m.source->path == path) return &m;
  }
  return nullptr;
}

void Add(const std::vector<FileModel>& models, const char* rule,
         const IncludeEdge& edge, std::string message,
         std::vector<lint::Finding>* findings) {
  lint::Finding f;
  f.rule = rule;
  f.file = edge.from_file;
  f.line = edge.line;
  f.message = std::move(message);
  if (const FileModel* m = ModelForPath(models, edge.from_file)) {
    f.suppressed = m->suppressions.Allows(edge.line, f.rule);
  }
  findings->push_back(std::move(f));
}

}  // namespace

void CheckLayering(const AnalysisIndex& index,
                   const std::vector<FileModel>& models,
                   std::vector<lint::Finding>* findings) {
  for (const IncludeEdge& edge : index.includes.RankViolations()) {
    const std::string from = ModuleOf(edge.from_file);
    const std::string to = ModuleOf(edge.target);
    Add(models, kRuleLayerOrder, edge,
        "module '" + from + "' (rank " + std::to_string(ModuleRank(from)) +
            ") includes \"" + edge.target + "\" from higher-rank module '" +
            to + "' (rank " + std::to_string(ModuleRank(to)) +
            "): the layer DAG is tensor/rng <- nn <- data <- fl <- "
            "core/metrics <- io/baselines/attack on top of util; invert the "
            "dependency or move the shared piece down a layer",
        findings);
  }
  for (const std::vector<IncludeEdge>& cycle : index.includes.Cycles()) {
    if (cycle.empty()) continue;
    std::string path;
    for (const IncludeEdge& edge : cycle) {
      if (!path.empty()) path += " -> ";
      path += ModuleOf(edge.from_file);
    }
    path += " -> " + ModuleOf(cycle.front().from_file);
    Add(models, kRuleLayerCycle, cycle.front(),
        "include cycle among src/ modules: " + path +
            "; break the cycle by extracting the shared interface into the "
            "lower layer",
        findings);
  }
}

}  // namespace fats::analyze
