// Fixed tile ownership (rule: tile-overlap).  In src/tensor, every
// ParallelFor worker lambda must derive the output elements it writes from
// its own task index (directly or through task-local state computed from
// it): that fixed ownership split — each worker owns a disjoint row band —
// is what makes multi-threaded kernels bit-identical to serial (DESIGN.md
// §7.6).  A subscripted write whose index mentions neither a lambda
// parameter nor anything declared inside the body can address the same
// element from every worker: overlapping tiles, last-writer-wins, and
// schedule-dependent bits.  nondet-reduction covers the accumulation flavor
// of this bug everywhere; tile-overlap additionally catches plain `=`
// stores, which in kernel code are just as fatal.

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/rules.h"
#include "analyze/rules_util.h"

namespace fats::analyze {
namespace {

bool IsWriteOp(const Token& t) {
  return t.kind == TokKind::kPunct &&
         (t.text == "=" || t.text == "+=" || t.text == "-=" ||
          t.text == "*=" || t.text == "/=");
}

// Collects every identifier declared inside [begin, end): `Type name` pairs
// (with optional &/* between) followed by `=`, `;`, `{`, `(`, or `[` —
// locals, loop variables, and task-local buffers.  Heuristic by design,
// like DeclaredInRange in the reduction rule.
std::vector<std::string> LocalNames(const std::vector<Token>& tokens,
                                    size_t begin, size_t end) {
  std::vector<std::string> names;
  for (size_t i = begin; i + 1 < end && i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent) continue;
    size_t j = i + 1;
    while (IsPunct(tokens, j, "&") || IsPunct(tokens, j, "*")) ++j;
    if (j < end && tokens[j].kind == TokKind::kIdent &&
        (IsPunct(tokens, j + 1, "=") || IsPunct(tokens, j + 1, ";") ||
         IsPunct(tokens, j + 1, "{") || IsPunct(tokens, j + 1, "(") ||
         IsPunct(tokens, j + 1, "["))) {
      names.emplace_back(tokens[j].text);
    }
  }
  return names;
}

bool MentionsAny(const std::vector<Token>& tokens, size_t begin, size_t end,
                 const std::vector<std::string>& names) {
  for (size_t i = begin; i < end; ++i) {
    if (tokens[i].kind == TokKind::kIdent &&
        std::find(names.begin(), names.end(), std::string(tokens[i].text)) !=
            names.end()) {
      return true;
    }
  }
  return false;
}

void CheckLambda(const FileModel& model, const LambdaBody& lambda,
                 std::vector<lint::Finding>* findings) {
  const std::vector<Token>& tokens = model.tokens;
  std::vector<std::string> owned = lambda.param_names;
  const std::vector<std::string> locals =
      LocalNames(tokens, lambda.body_begin, lambda.body_end);
  owned.insert(owned.end(), locals.begin(), locals.end());

  for (size_t i = lambda.body_begin; i < lambda.body_end; ++i) {
    if (!IsWriteOp(tokens[i])) continue;
    if (i == 0 || !IsPunct(tokens, i - 1, "]")) continue;
    // Walk back to the matching '[' and the subscripted base identifier.
    int depth = 0;
    size_t j = i;  // first decrement lands on the ']'
    bool matched = false;
    while (j-- > 0) {
      if (IsPunct(tokens, j, "]")) ++depth;
      if (IsPunct(tokens, j, "[")) {
        if (--depth == 0) {
          matched = true;
          break;
        }
      }
      if (j == 0) break;
    }
    if (!matched || j == 0 || j <= lambda.body_begin ||
        tokens[j - 1].kind != TokKind::kIdent) {
      continue;
    }
    const std::string base(tokens[j - 1].text);
    // A task-local buffer is private to the worker by construction.
    if (std::find(locals.begin(), locals.end(), base) != locals.end()) {
      continue;
    }
    // Sanctioned: the subscript depends on a lambda parameter or on a
    // body-local value (itself necessarily derived inside this task).
    if (MentionsAny(tokens, j + 1, i - 1, owned)) continue;
    AddFinding(
        model, kRuleTileOverlap, tokens[i].line,
        "write to '" + base +
            "' inside a ParallelFor task whose subscript depends on "
            "neither the task index nor task-local state: every worker "
            "may address the same element, so tiles overlap and the fixed "
            "tile-ownership determinism contract breaks; derive the "
            "output range from the task/band index",
        findings);
  }
}

}  // namespace

void CheckTileOwnership(const FileModel& model,
                        std::vector<lint::Finding>* findings) {
  // The fixed-ownership contract is a src/tensor kernel discipline; the
  // rest of the tree is covered by nondet-reduction's accumulation check.
  if (model.source->path.find("src/tensor") == std::string::npos) return;
  const std::vector<Token>& tokens = model.tokens;
  for (const auto& [args_begin, args_end] : ParallelForArgRanges(tokens)) {
    for (const LambdaBody& lambda :
         FindLambdas(tokens, args_begin, args_end)) {
      CheckLambda(model, lambda, findings);
    }
  }
}

}  // namespace fats::analyze
