// Scenario: a consortium of clinics trains a diagnostic model with
// federated learning. A patient at one clinic withdraws consent for a
// single health record (GDPR right to erasure). The clinic must prove the
// record's influence is gone - without forcing every clinic to retrain.
//
// This example compares three ways to honour the request:
//   FATS-SU  - exact unlearning with selective re-computation,
//   FRS      - exact unlearning by retraining from scratch,
//   FR2      - approximate rapid retraining (cheap but not exact),
// and runs a membership-inference attack against each resulting model.

#include <cstdio>

#include "attack/mia.h"
#include "baselines/fr2.h"
#include "baselines/frs.h"
#include "core/sample_unlearner.h"
#include "data/paper_configs.h"

using namespace fats;  // NOLINT: example brevity

namespace {

// The femnist-like profile: each "writer" is one clinic with its own data
// distribution (natural non-IID).
DatasetProfile ClinicProfile() {
  DatasetProfile profile = ScaledProfile("femnist").value();
  profile.clients_m = 40;
  profile.rounds_r = 12;
  profile.test_size = 240;
  return profile;
}

// Patient records the attacker probes: all deleted samples.
Batch GatherTargets(const FederatedDataset& data,
                    const std::vector<SampleRef>& targets) {
  InMemoryDataset pool;
  for (const SampleRef& ref : targets) {
    Batch one = data.client_data(ref.client).GatherBatch({ref.index});
    pool.Append(InMemoryDataset(one.inputs, one.labels, data.num_classes()));
  }
  return pool.AsBatch();
}

}  // namespace

int main() {
  DatasetProfile profile = ClinicProfile();
  std::printf("Clinic consortium workload: %s\n\n", profile.ToString().c_str());

  // Patient records to erase: a handful of samples at clinic 2.
  std::vector<SampleRef> withdrawals = {{2, 0}, {2, 1}, {2, 2}, {2, 3},
                                        {2, 4}, {2, 5}, {2, 6}, {2, 7}};

  // ---------------- FATS ----------------
  FederatedDataset fats_data = BuildFederatedData(profile, 7);
  FatsConfig config = FatsConfig::FromProfile(profile);
  config.seed = 77;
  FatsTrainer fats(profile.model, config, &fats_data);
  fats.Train();
  const double fats_acc_before = fats.EvaluateTestAccuracy();
  Batch member_pool = GatherTargets(fats_data, withdrawals);
  SampleUnlearner su(&fats);
  UnlearningOutcome fats_cost =
      su.UnlearnBatch(withdrawals, config.total_iters_t()).value();
  std::printf("FATS-SU : acc %.3f -> %.3f | recomputed %lld/%lld rounds\n",
              fats_acc_before, fats.EvaluateTestAccuracy(),
              static_cast<long long>(fats_cost.recomputed_rounds),
              static_cast<long long>(profile.rounds_r));

  // ---------------- FRS ----------------
  FederatedDataset frs_data = BuildFederatedData(profile, 7);
  FedAvgOptions options;
  options.clients_per_round_k = profile.clients_per_round_k;
  options.local_iters_e = profile.local_iters_e;
  options.batch_b = profile.batch_b;
  options.learning_rate = profile.learning_rate;
  options.seed = 77;
  FedAvgTrainer frs_trainer(profile.model, options, &frs_data);
  frs_trainer.RunRounds(profile.rounds_r);
  const double frs_acc_before = frs_trainer.EvaluateTestAccuracy();
  FrsUnlearner frs(&frs_trainer, &frs_data);
  UnlearningOutcome frs_cost =
      frs.UnlearnSamples(withdrawals, profile.rounds_r).value();
  std::printf("FRS     : acc %.3f -> %.3f | recomputed %lld/%lld rounds\n",
              frs_acc_before, frs_trainer.EvaluateTestAccuracy(),
              static_cast<long long>(frs_cost.recomputed_rounds),
              static_cast<long long>(profile.rounds_r));

  // ---------------- FR2 ----------------
  FederatedDataset fr2_data = BuildFederatedData(profile, 7);
  FedAvgTrainer fr2_trainer(profile.model, options, &fr2_data);
  fr2_trainer.RunRounds(profile.rounds_r);
  const double fr2_acc_before = fr2_trainer.EvaluateTestAccuracy();
  Fr2Options fr2_options;
  fr2_options.recovery_rounds = 3;
  Fr2Unlearner fr2(&fr2_trainer, &fr2_data, fr2_options);
  UnlearningOutcome fr2_cost = fr2.UnlearnSamples(withdrawals).value();
  std::printf("FR2     : acc %.3f -> %.3f | recovery %lld rounds (approx.)\n",
              fr2_acc_before, fr2_trainer.EvaluateTestAccuracy(),
              static_cast<long long>(fr2_cost.recomputed_rounds));

  // ---------------- Audit: membership inference ----------------
  // Fresh never-seen records from the same clinic's distribution, so the
  // attack can only succeed through genuine memorization.
  Batch nonmember_pool =
      GenerateClientHoldout(profile, 7, /*client=*/2,
                            static_cast<int64_t>(withdrawals.size()))
          .AsBatch();
  MiaOptions mia;
  mia.trials = 50;
  mia.seed = 5;
  std::printf("\nMembership-inference audit on the erased records "
              "(50%% = perfect erasure):\n");
  MiaResult fats_mia =
      RunMembershipInference(fats.model(), member_pool, nonmember_pool, mia)
          .value();
  std::printf("  FATS: %s\n", fats_mia.ToString().c_str());
  MiaResult frs_mia = RunMembershipInference(frs_trainer.model(), member_pool,
                                             nonmember_pool, mia)
                          .value();
  std::printf("  FRS : %s\n", frs_mia.ToString().c_str());
  MiaResult fr2_mia = RunMembershipInference(fr2_trainer.model(), member_pool,
                                             nonmember_pool, mia)
                          .value();
  std::printf("  FR2 : %s\n", fr2_mia.ToString().c_str());

  std::printf("\nFATS matches FRS's exact erasure at a fraction of the "
              "re-computation cost;\nFR2 is cheapest but only approximate "
              "(its unlearning leaves no formal guarantee).\n");
  return 0;
}
