// Scenario: a fleet of smartwatches trains a next-character keyboard model
// (the Shakespeare-like text workload). Devices churn: users opt out and
// their entire on-device history must be forgotten from the global model.
//
// This example drives FATS-CU through a sequence of device departures and
// reports, per departure, whether re-computation was needed, how many
// rounds it cost, and the exact communication bill - against the FRS
// worst case of a full retrain per departure.

#include <cstdio>

#include "core/client_unlearner.h"
#include "core/fats_trainer.h"
#include "data/paper_configs.h"

using namespace fats;  // NOLINT: example brevity

int main() {
  DatasetProfile profile = ScaledProfile("shakespeare").value();
  profile.clients_m = 40;
  profile.rounds_r = 8;
  profile.test_size = 200;
  std::printf("Keyboard-model fleet: %s\n\n", profile.ToString().c_str());

  FederatedDataset data = BuildFederatedData(profile, 3);
  FatsConfig config = FatsConfig::FromProfile(profile);
  if (!config.Validate().ok()) {
    // Keep the demo robust if the shrunken shape breaks feasibility.
    config.rho_c = 0.5;
    config.rho_s = 0.25;
  }
  config.seed = 11;
  FatsTrainer trainer(profile.model, config, &data);
  trainer.Train();
  std::printf("initial training: accuracy %.3f after %lld rounds, %s\n\n",
              trainer.EvaluateTestAccuracy(),
              static_cast<long long>(profile.rounds_r),
              trainer.comm_stats().ToString().c_str());

  const int64_t model_bytes = trainer.model()->NumParameters() * 4;
  const int64_t frs_rounds = profile.rounds_r;
  const int64_t frs_bytes_per_departure =
      2 * frs_rounds * trainer.K() * model_bytes;

  ClientUnlearner unlearner(&trainer);
  int64_t total_fats_rounds = 0;
  std::printf("%8s %12s %10s %10s %14s\n", "device", "participated",
              "recompute", "rounds", "accuracy");
  const std::vector<int64_t> departures = {4, 11, 17, 23, 31};
  for (int64_t device : departures) {
    const int64_t comm_rounds_before = trainer.comm_stats().rounds();
    const bool participated =
        trainer.store().EarliestClientRound(device) >= 1;
    UnlearningOutcome outcome =
        unlearner.Unlearn(device, config.total_iters_t()).value();
    total_fats_rounds += outcome.recomputed_rounds;
    std::printf("%8lld %12s %10s %10lld %14.3f\n",
                static_cast<long long>(device),
                participated ? "yes" : "no",
                outcome.recomputed ? "yes" : "no",
                static_cast<long long>(outcome.recomputed_rounds),
                trainer.EvaluateTestAccuracy());
    (void)comm_rounds_before;
  }

  std::printf("\n%zu departures handled.\n", departures.size());
  std::printf("FATS-CU re-computed %lld rounds total; FRS would have "
              "re-computed %lld.\n",
              static_cast<long long>(total_fats_rounds),
              static_cast<long long>(
                  frs_rounds * static_cast<int64_t>(departures.size())));
  std::printf("FRS communication per departure: %lld bytes; see the "
              "trainer's running total: %s\n",
              static_cast<long long>(frs_bytes_per_departure),
              trainer.comm_stats().ToString().c_str());
  std::printf("\nEach departure is exactly unlearned (Theorem 1): the "
              "global model is\ndistributed as if the device had never "
              "enrolled.\n");
  return 0;
}
