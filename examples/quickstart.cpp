// Quickstart: train FATS on a small federated workload, delete one sample
// and one client, and watch the exact-unlearning machinery at work.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/client_unlearner.h"
#include "core/fats_trainer.h"
#include "core/sample_unlearner.h"
#include "core/tv_stability.h"
#include "data/paper_configs.h"

using namespace fats;  // NOLINT: example brevity

int main() {
  // 1. A federated workload: the scaled MNIST-like profile from DESIGN.md
  //    (60 clients x 40 samples, non-IID via a Dirichlet label partition).
  DatasetProfile profile = ScaledProfile("mnist").value();
  profile.rounds_r = 10;  // keep the demo quick
  FederatedDataset data = BuildFederatedData(profile, /*seed=*/1);
  std::printf("workload: %s\n", profile.ToString().c_str());
  std::printf("data:     %s\n", data.ToString().c_str());

  // 2. Configure FATS from TV-stability targets. K (clients per round) and
  //    b (mini-batch size) are derived from (rho_s, rho_c) per Algorithm 1.
  FatsConfig config = FatsConfig::FromProfile(profile);
  config.seed = 42;
  std::printf("config:   %s\n", config.ToString().c_str());
  std::printf("Lemma 1 bounds: sample-TV <= %.3f, client-TV <= %.3f\n",
              SampleLevelStabilityBound(config),
              ClientLevelStabilityBound(config));

  // 3. Train. The trainer records every sampling decision in its state
  //    store - that record is what makes exact unlearning cheap.
  FatsTrainer trainer(profile.model, config, &data);
  trainer.Train();
  std::printf("\ntrained %lld rounds, test accuracy %.3f, comm %s\n",
              static_cast<long long>(config.rounds_r),
              trainer.EvaluateTestAccuracy(),
              trainer.comm_stats().ToString().c_str());

  // 4. Sample-level unlearning (FATS-SU). Verification is an O(1) lookup;
  //    re-computation happens only if the sample ever hit a mini-batch.
  SampleRef target_sample{/*client=*/3, /*index=*/7};
  SampleUnlearner sample_unlearner(&trainer);
  UnlearningOutcome su =
      sample_unlearner.Unlearn(target_sample, config.total_iters_t()).value();
  std::printf("\nFATS-SU on sample (client 3, index 7): recomputed=%s",
              su.recomputed ? "yes" : "no");
  if (su.recomputed) {
    std::printf(" from iteration %lld (%lld of %lld iterations, %lld rounds)",
                static_cast<long long>(su.restart_iteration),
                static_cast<long long>(su.recomputed_iterations),
                static_cast<long long>(config.total_iters_t()),
                static_cast<long long>(su.recomputed_rounds));
  }
  std::printf("\n  accuracy after unlearning: %.3f\n",
              trainer.EvaluateTestAccuracy());

  // 5. Client-level unlearning (FATS-CU): a device exercises its right to
  //    be forgotten entirely.
  ClientUnlearner client_unlearner(&trainer);
  UnlearningOutcome cu =
      client_unlearner.Unlearn(/*target_client=*/5, config.total_iters_t())
          .value();
  std::printf("\nFATS-CU on client 5: recomputed=%s, rounds re-run=%lld\n",
              cu.recomputed ? "yes" : "no",
              static_cast<long long>(cu.recomputed_rounds));
  std::printf("  accuracy after unlearning: %.3f\n",
              trainer.EvaluateTestAccuracy());
  std::printf("  active clients: %lld of %lld\n",
              static_cast<long long>(data.num_active_clients()),
              static_cast<long long>(data.num_clients()));

  std::printf("\nBoth deletions are *exact*: the resulting model is "
              "distributed identically\nto one retrained from scratch "
              "without the deleted data (Theorem 1).\n");
  return 0;
}
