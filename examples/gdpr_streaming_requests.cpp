// Scenario: a production FL deployment receives a *stream* of GDPR
// deletion requests - some for single records, some for whole users - and
// must honour each one exactly, while continuing to serve the model.
//
// Demonstrates UnlearningExecutor::ExecuteStream on a mixed request
// sequence (the Appendix A.5 streaming setting) and prints the accuracy
// trajectory across requests plus the aggregate unlearning bill.

#include <cstdio>

#include "core/unlearning_executor.h"
#include "core/tv_stability.h"
#include "data/paper_configs.h"

using namespace fats;  // NOLINT: example brevity

int main() {
  DatasetProfile profile = ScaledProfile("fashion").value();
  profile.clients_m = 40;
  profile.rounds_r = 10;
  profile.test_size = 240;
  std::printf("Deployment workload: %s\n\n", profile.ToString().c_str());

  FederatedDataset data = BuildFederatedData(profile, 5);
  FatsConfig config = FatsConfig::FromProfile(profile);
  config.seed = 99;
  FatsTrainer trainer(profile.model, config, &data);
  trainer.Train();
  std::printf("deployed model accuracy: %.3f\n\n",
              trainer.EvaluateTestAccuracy());

  // Build a stream of 8 requests: samples and clients interleaved.
  StreamId id;
  id.purpose = RngPurpose::kGeneric;
  RngStream rng(123, id);
  std::vector<UnlearningRequest> stream;
  std::vector<SampleRef> samples = PickRandomActiveSamples(data, 5, &rng);
  std::vector<int64_t> clients = PickRandomActiveClients(data, 3, &rng);
  for (size_t i = 0; i < samples.size(); ++i) {
    // Skip samples owned by a departing client (they vanish with it).
    bool owned = false;
    for (int64_t k : clients) owned = owned || samples[i].client == k;
    if (owned) continue;
    UnlearningRequest request;
    request.kind = UnlearningRequest::Kind::kSample;
    request.sample = samples[i];
    request.request_iter = config.total_iters_t();
    stream.push_back(request);
  }
  for (int64_t k : clients) {
    UnlearningRequest request;
    request.kind = UnlearningRequest::Kind::kClient;
    request.client = k;
    request.request_iter = config.total_iters_t();
    stream.push_back(request);
  }

  std::printf("processing %zu streaming requests...\n\n", stream.size());
  UnlearningExecutor executor(&trainer);
  std::printf("%6s %8s %10s %10s %10s\n", "req", "kind", "recompute",
              "rounds", "accuracy");
  UnlearningSummary total;
  for (size_t i = 0; i < stream.size(); ++i) {
    UnlearningSummary one = executor.ExecuteStream({stream[i]}).value();
    total.requests += one.requests;
    total.recomputations += one.recomputations;
    total.total_recomputed_iterations += one.total_recomputed_iterations;
    total.total_recomputed_rounds += one.total_recomputed_rounds;
    std::printf("%6zu %8s %10s %10lld %10.3f\n", i + 1,
                stream[i].kind == UnlearningRequest::Kind::kSample
                    ? "sample"
                    : "client",
                one.recomputations > 0 ? "yes" : "no",
                static_cast<long long>(one.total_recomputed_rounds),
                trainer.EvaluateTestAccuracy());
  }

  const double rho_s = SampleLevelStabilityBound(config);
  const double rho_c = ClientLevelStabilityBound(config);
  std::printf("\nsummary: %lld/%lld requests needed re-computation "
              "(theory: <= rho per request, rho_s=%.2f rho_c=%.2f)\n",
              static_cast<long long>(total.recomputations),
              static_cast<long long>(total.requests), rho_s, rho_c);
  std::printf("total re-computed rounds: %lld (FRS would pay %lld)\n",
              static_cast<long long>(total.total_recomputed_rounds),
              static_cast<long long>(profile.rounds_r *
                                     static_cast<int64_t>(stream.size())));
  std::printf("final accuracy: %.3f with %lld of %lld clients remaining\n",
              trainer.EvaluateTestAccuracy(),
              static_cast<long long>(data.num_active_clients()),
              static_cast<long long>(data.num_clients()));
  return 0;
}
