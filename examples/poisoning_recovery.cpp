// Scenario: countering data poisoning (the paper's §1 motivation beyond
// privacy). A malicious client joins the federation with label-flipped
// data, dragging the global model down. Once detected, FATS-CU removes the
// attacker *exactly* — the recovered model is distributed as if the
// attacker had never enrolled, a guarantee no gradient-surgery defence
// offers — at a fraction of the cost of retraining from scratch.

#include <algorithm>
#include <cstdio>

#include "core/client_unlearner.h"
#include "core/fats_trainer.h"
#include "data/paper_configs.h"

using namespace fats;  // NOLINT: example brevity

namespace {

/// Rebuilds the federation with the `attackers` coalition's labels flipped
/// (y -> (y+1) mod classes): a classic availability poisoning.
FederatedDataset PoisonedFederation(const DatasetProfile& profile,
                                    uint64_t seed,
                                    const std::vector<int64_t>& attackers) {
  FederatedDataset clean = BuildFederatedData(profile, seed);
  std::vector<InMemoryDataset> shards;
  for (int64_t k = 0; k < clean.num_clients(); ++k) {
    const InMemoryDataset& shard = clean.client_data(k);
    const bool poisoned =
        std::find(attackers.begin(), attackers.end(), k) != attackers.end();
    if (!poisoned) {
      shards.push_back(shard);
      continue;
    }
    std::vector<int64_t> flipped = shard.labels();
    for (int64_t& y : flipped) y = (y + 1) % shard.num_classes();
    shards.emplace_back(shard.features(), std::move(flipped),
                        shard.num_classes());
  }
  return FederatedDataset(std::move(shards), clean.global_test());
}

}  // namespace

int main() {
  DatasetProfile profile = ScaledProfile("mnist").value();
  profile.clients_m = 36;
  profile.rounds_r = 12;
  profile.test_size = 240;
  // A 19% coalition: enough weight to visibly poison the global model.
  const std::vector<int64_t> attackers = {2, 5, 8, 13, 21, 27, 33};

  FatsConfig config = FatsConfig::FromProfile(profile);
  config.rho_c = 1.0;  // K = ρ_C·M/R = 3 clients per round
  config.seed = 7;

  // ---- clean reference ----
  FederatedDataset clean_data = BuildFederatedData(profile, 7);
  FatsTrainer clean(profile.model, config, &clean_data);
  clean.Train();
  std::printf("clean federation    : accuracy %.3f\n",
              clean.EvaluateTestAccuracy());

  // ---- poisoned run ----
  FederatedDataset poisoned_data = PoisonedFederation(profile, 7, attackers);
  FatsTrainer trainer(profile.model, config, &poisoned_data);
  trainer.Train();
  std::printf("with 7 poisoned clts: accuracy %.3f\n",
              trainer.EvaluateTestAccuracy());

  // ---- detection is out of scope; removal is exact ----
  ClientUnlearner unlearner(&trainer);
  UnlearningOutcome outcome =
      unlearner.UnlearnBatch(attackers, config.total_iters_t()).value();
  std::printf("FATS-CU removal     : recomputed %lld/%lld rounds\n",
              static_cast<long long>(outcome.recomputed_rounds),
              static_cast<long long>(profile.rounds_r));
  std::printf("after exact removal : accuracy %.3f  (federation: %lld of "
              "%lld clients remain)\n",
              trainer.EvaluateTestAccuracy(),
              static_cast<long long>(poisoned_data.num_active_clients()),
              static_cast<long long>(poisoned_data.num_clients()));
  std::printf("\nThe coalition's influence is *provably* gone (Theorem 1): "
              "the recovered model's\ndistribution equals training without "
              "the attackers — compare the clean run above.\nFRS would have "
              "paid %lld rounds per request for the same guarantee.\n",
              static_cast<long long>(profile.rounds_r));
  return 0;
}
