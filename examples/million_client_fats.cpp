// Million-client FATS: train on M = 1,000,000 clients with bounded memory.
//
// The flat in-memory layout would need the whole federation resident —
// every client's shard up front and every history record in std::maps.
// This example runs the same Algorithm 1 schedule through the state layer
// instead (DESIGN.md §7.8):
//
//   * the dataset is lazy: a client's shard is generated (deterministically,
//     bitwise-equal to the eager build) the first time the sampler touches
//     it, and only a small LRU of shards stays resident — memory follows
//     K·R clients touched, not M;
//   * the state store tiers history into compressed blocks and spills cold
//     ones to CRC-framed segment files under --spill-dir;
//   * aggregation is the sharded deterministic tree, so the run is
//     bit-identical at any --threads.
//
// The peak RSS (VmHWM) is checked against --rss-cap-mb, making this binary
// the acceptance gate for the bounded-memory claim: a ctest invocation
// (memory_smoke_million_client) runs it under a hard ulimit as well.
//
// Build & run:
//   cmake --preset release && cmake --build --preset release
//   ./build-release/examples/million_client_fats
//
// A full million-client run finishes in a few minutes; pass
// --clients=100000 for a quick look.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/fats_trainer.h"
#include "core/sample_unlearner.h"
#include "data/paper_configs.h"
#include "util/flags.h"

using namespace fats;  // NOLINT: example brevity

namespace {

// Peak resident set size in MiB from /proc/self/status (Linux).
double PeakRssMb() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return -1.0;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) break;
  }
  std::fclose(status);
  return kb < 0 ? -1.0 : static_cast<double>(kb) / 1024.0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  int64_t* clients = flags.AddInt("clients", 1000000, "federation size M");
  int64_t* rounds = flags.AddInt("rounds", 3, "training rounds R");
  int64_t* threads = flags.AddInt("threads", 2, "worker threads");
  int64_t* rss_cap_mb = flags.AddInt(
      "rss-cap-mb", 512,
      "fail (exit 1) if peak RSS exceeds this many MiB; 0 disables");
  std::string* spill_dir = flags.AddString(
      "spill-dir", "", "segment spill directory (default: under /tmp)");
  Status parsed = flags.Parse(argc, argv);
  if (parsed.code() == StatusCode::kNotFound) return 0;  // --help
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }

  // The workload: an MNIST-like profile stretched to M clients of N=8
  // samples, K=32 per round, E=2 local iterations, batch b=4. The
  // stability targets are back-derived so DeriveK()/DeriveB() reproduce
  // exactly these integers (ρ_C = K·T/(E·M), ρ_S = b·K·T/(M·N)).
  DatasetProfile profile = ScaledProfile("mnist").value();
  profile.clients_m = *clients;
  profile.samples_per_client_n = 8;
  profile.clients_per_round_k = 32;
  profile.rounds_r = *rounds;
  profile.local_iters_e = 2;
  profile.batch_b = 4;
  profile.test_size = 64;

  std::printf("workload: M=%lld clients, K=%lld per round, R=%lld rounds "
              "(rho_c=%.2e, rho_s=%.2e)\n",
              static_cast<long long>(profile.clients_m),
              static_cast<long long>(profile.clients_per_round_k),
              static_cast<long long>(profile.rounds_r), profile.rho_c(),
              profile.rho_s());

  // Lazy dataset: nothing is generated yet; shards materialize as sampled.
  LazyDatasetOptions lazy_options;
  lazy_options.shard_cache_capacity = 64;
  FederatedDataset data = BuildLazyFederatedData(profile, /*seed=*/1,
                                                 lazy_options);

  const std::string segs =
      spill_dir->empty()
          ? (std::filesystem::temp_directory_path() / "fats_million_segs")
                .string()
          : *spill_dir;
  std::filesystem::remove_all(segs);

  FatsConfig config = FatsConfig::FromProfile(profile);
  config.seed = 42;
  config.num_threads = *threads;
  config.state_spill_dir = segs;
  config.state_block_iters = 1;
  config.state_resident_sealed_blocks = 1;
  config.state_decoded_cache_blocks = 4;

  FatsTrainer trainer(profile.model, config, &data);
  trainer.Train();

  std::printf("\ntrained %lld rounds: test accuracy %.3f\n",
              static_cast<long long>(profile.rounds_r),
              trainer.EvaluateTestAccuracy());
  std::printf("shards materialized: %lld resident (of %lld clients, %lld "
              "generations)\n",
              static_cast<long long>(data.materialized_shards()),
              static_cast<long long>(data.num_clients()),
              static_cast<long long>(data.shard_generations()));
  std::printf("state store: %.2f MiB resident, %.2f KiB spilled to %s\n",
              static_cast<double>(trainer.store().ApproxBytes()) /
                  (1024.0 * 1024.0),
              static_cast<double>(trainer.store().SpilledBytes()) / 1024.0,
              segs.c_str());

  // Exact unlearning still works at this scale: pick a sample a recorded
  // mini-batch actually used, delete it, replay.
  SampleRef target{-1, -1};
  for (const auto& [iter, client] : trainer.store().MinibatchKeys()) {
    const std::vector<int64_t>* batch = trainer.store().GetMinibatch(iter,
                                                                     client);
    if (batch != nullptr && !batch->empty()) {
      target = {client, batch->front()};
      break;
    }
  }
  if (target.client >= 0) {
    SampleUnlearner unlearner(&trainer);
    Result<UnlearningOutcome> outcome =
        unlearner.Unlearn(target, config.total_iters_t());
    if (!outcome.ok()) {
      std::fprintf(stderr, "unlearning failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("\nFATS-SU on (client %lld, sample %lld): recomputed=%s, "
                "%lld of %lld iterations replayed\n",
                static_cast<long long>(target.client),
                static_cast<long long>(target.index),
                outcome->recomputed ? "yes" : "no",
                static_cast<long long>(outcome->recomputed_iterations),
                static_cast<long long>(config.total_iters_t()));
  }

  std::filesystem::remove_all(segs);

  const double peak_mb = PeakRssMb();
  std::printf("\npeak RSS: %.1f MiB (cap: %lld MiB)\n", peak_mb,
              static_cast<long long>(*rss_cap_mb));
  if (*rss_cap_mb > 0 && peak_mb > static_cast<double>(*rss_cap_mb)) {
    std::fprintf(stderr,
                 "FAIL: peak RSS %.1f MiB exceeds the %lld MiB cap — the "
                 "bounded-memory contract of the state layer is broken\n",
                 peak_mb, static_cast<long long>(*rss_cap_mb));
    return 1;
  }
  std::printf("OK: memory stayed bounded; the federation never lived in "
              "RAM at once.\n");
  return 0;
}
