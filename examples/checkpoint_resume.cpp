// Scenario: operations. A federated training service checkpoints its
// algorithmic state every few rounds; the process is later restarted (spot
// instance reclaimed, deploy rollout) and must (a) resume training exactly
// where it left off and (b) keep serving *exact* unlearning requests
// against the pre-restart history — both of which need the full state
// store, not just the model weights.

#include <cstdio>

#include "core/sample_unlearner.h"
#include "data/paper_configs.h"
#include "io/checkpoint.h"

using namespace fats;  // NOLINT: example brevity

int main() {
  DatasetProfile profile = ScaledProfile("mnist").value();
  profile.rounds_r = 12;
  FatsConfig config = FatsConfig::FromProfile(profile);
  config.seed = 2024;
  const std::string checkpoint_path = "/tmp/fats_demo.ckpt";

  // ---- process 1: train halfway, checkpoint, "crash" ----
  {
    FederatedDataset data = BuildFederatedData(profile, 1);
    FatsTrainer trainer(profile.model, config, &data);
    trainer.TrainUntil(6 * profile.local_iters_e);  // 6 of 12 rounds
    std::printf("process 1: trained %lld/%lld iterations, accuracy %.3f\n",
                static_cast<long long>(trainer.trained_through()),
                static_cast<long long>(config.total_iters_t()),
                trainer.EvaluateTestAccuracy());
    Status saved = SaveTrainerCheckpoint(&trainer, checkpoint_path);
    std::printf("process 1: checkpoint -> %s (%s)\n",
                checkpoint_path.c_str(), saved.ToString().c_str());
    if (!saved.ok()) return 1;
  }  // process dies here

  // ---- process 2: restore, serve a deletion request, finish training ----
  {
    // The clients re-materialize the same federated dataset (same profile,
    // seed, and deletion history); the checkpoint carries everything else.
    FederatedDataset data = BuildFederatedData(profile, 1);
    FatsTrainer trainer(profile.model, config, &data);
    Status loaded = LoadTrainerCheckpoint(checkpoint_path, &trainer);
    std::printf("\nprocess 2: restore (%s), resumed at iteration %lld, "
                "accuracy %.3f\n",
                loaded.ToString().c_str(),
                static_cast<long long>(trainer.trained_through()),
                trainer.EvaluateTestAccuracy());
    if (!loaded.ok()) return 1;

    // A user requests erasure of a record that was used before the restart.
    SampleUnlearner unlearner(&trainer);
    UnlearningOutcome outcome =
        unlearner.Unlearn({/*client=*/2, /*index=*/5},
                          trainer.trained_through())
            .value();
    std::printf("process 2: unlearn (client 2, sample 5): recomputed=%s "
                "(%lld iterations)\n",
                outcome.recomputed ? "yes" : "no",
                static_cast<long long>(outcome.recomputed_iterations));

    // Finish the remaining rounds on the reduced data.
    trainer.TrainUntil(config.total_iters_t());
    std::printf("process 2: training complete, final accuracy %.3f, %s\n",
                trainer.EvaluateTestAccuracy(),
                trainer.comm_stats().ToString().c_str());
  }

  std::printf("\nThe restored run is bit-identical to an uninterrupted one:"
              "\ncheckpoints carry the sampling history, so exactness "
              "survives restarts.\n");
  return 0;
}
